package exper

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/dataorient"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

func arcRow(t *Table, g *deps.Graph, a deps.Arc, status string) {
	dist := "?"
	if a.Known {
		dist = fmt.Sprintf("%d", a.Dist[0])
	}
	t.AddRow(g.Stmts[a.Src].Name, g.Stmts[a.Dst].Name, a.Kind.String(), dist,
		a.SrcRef.String(), a.DstRef.String(), status)
}

// E1DependenceGraph regenerates Fig 2.1(b): the dependence graph of the
// five-statement loop and the covering elimination of S1->S4 (and the
// memory-based S1->S5 the figure omits).
func E1DependenceGraph() ([]*Table, error) {
	w := workloads.Fig21(20, 1)
	g := w.Nest.LinearGraph()
	enforced := g.Enforced()
	isEnforced := func(a deps.Arc) bool {
		for _, e := range enforced {
			if e.Src == a.Src && e.Dst == a.Dst && e.Dist[0] == a.Dist[0] {
				return true
			}
		}
		return false
	}
	t := &Table{
		ID:      "E1.1",
		Title:   "Dependence graph of the Fig 2.1 loop (cross-iteration arcs)",
		Columns: []string{"source", "sink", "kind", "dist", "source ref", "sink ref", "enforcement"},
	}
	for _, a := range g.CrossArcs() {
		status := "enforced"
		if !isEnforced(a) {
			status = "covered (eliminated)"
		}
		arcRow(t, g, a, status)
	}
	t.Note("S1->S4 (output, 3) is covered by S1->S3 (1) + S3->S4 (2), as the paper observes;")
	t.Note("S1->S5 (flow, 4) is the memory-based arc Fig 2.1 omits, covered by S1->S3+S3->S4+S4->S5.")

	t2 := &Table{
		ID:      "E1.2",
		Title:   "Enforced set and the wait_PC each arc induces (Fig 4.1 view)",
		Columns: []string{"arc", "sink executes", "source step", "wait"},
	}
	for _, a := range enforced {
		step := sourceStep(enforced, a.Src)
		t2.AddRow(
			fmt.Sprintf("%s -%s(%d)-> %s", g.Stmts[a.Src].Name, a.Kind, a.Dist[0], g.Stmts[a.Dst].Name),
			g.Stmts[a.Dst].Name, step,
			fmt.Sprintf("wait_PC(%d,%d)", a.Dist[0], step))
	}
	t2.Note("the Fig 2.1 loop has no loop-independent dependences; body order alone")
	t2.Note("orders statements within one iteration (the figure's dashed lines).")
	return []*Table{t, t2}, nil
}

// sourceStep numbers source statements by body position, as the
// process-oriented code generator does.
func sourceStep(enforced []deps.Arc, src int) int64 {
	srcs := map[int]bool{}
	for _, a := range enforced {
		srcs[a.Src] = true
	}
	step := int64(0)
	for p := 0; p <= src; p++ {
		if srcs[p] {
			step++
		}
	}
	return step
}

// E2DataOriented regenerates Fig 3.1: the reference-based ticket assignment
// for one interior element, the instance-based renaming plan, and the
// storage accounting that motivates the paper's criticism.
func E2DataOriented() ([]*Table, error) {
	const n = 100
	w := workloads.Fig21(n, 1)
	plan := dataorient.BuildPlan(w.Nest)
	elem := dataorient.Elem{Array: "A", Dims: 1, C: [3]int64{10}}
	stmts := w.Nest.Stmts()

	t := &Table{
		ID:      "E2.1",
		Title:   "Fig 3.1a — reference-based key protocol for element A[10]",
		Columns: []string{"access", "iteration", "kind", "wait until key>=", "then"},
	}
	for _, a := range plan.Elems[elem] {
		t.AddRow(stmts[a.ID.StmtPos].Name, a.ID.Lpid, a.Kind.String(), a.Ticket, "++key")
	}
	t.Note("reads between two writes share a ticket and proceed in any order (S2,S3).")

	t2 := &Table{
		ID:      "E2.2",
		Title:   "Fig 3.1b — instance-based renaming for element A[10]",
		Columns: []string{"access", "iteration", "kind", "version", "copies/copy#"},
	}
	for _, a := range plan.Elems[elem] {
		detail := fmt.Sprintf("consumes copy %d", a.CopyIdx)
		ver := a.Epoch
		if a.Kind == deps.Write {
			detail = fmt.Sprintf("writes %d copies", maxI(a.Readers, 1))
			ver = a.Epoch + 1
		}
		t2.AddRow(stmts[a.ID.StmtPos].Name, a.ID.Lpid, a.Kind.String(), ver, detail)
	}

	f := plan.Footprint()
	t3 := &Table{
		ID:      "E2.3",
		Title:   fmt.Sprintf("Synchronization storage for the Fig 2.1 loop, N=%d", n),
		Columns: []string{"scheme", "sync variables", "init ops", "storage words"},
	}
	t3.AddRow("data (reference-based keys)", f.Keys, f.InitOps, f.Keys)
	t3.AddRow("data (instance-based, HEP)", f.Bits, f.Bits, f.Bits+f.Copies)
	t3.AddRow("statement-oriented (SCs)", 4, 4, 4)
	t3.AddRow("process-oriented (X=8 PCs)", 8, 8, 8)
	t3.Note("data-oriented storage grows with the data (O(N)); SCs with the body; PCs with X only.")
	return []*Table{t, t2, t3}, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E3StatementSerialization measures the paper's horizontal-sharing
// argument: one delayed iteration stalls every later advance of a statement
// counter, while process counters only delay true dependents. The workload
// is a distance-8 recurrence — eight independent dependence chains — so a
// delay in one chain leaves the other seven chains free under process
// counters, while the statement counter's strict iteration-order advance
// stalls them all.
func E3StatementSerialization() ([]*Table, error) {
	const n, dist, cost, delayed, delay = 320, 8, 4, 60, 400
	run := func(sch codegen.Scheme, withDelay bool) (codegen.Result, error) {
		w := workloads.Recurrence(n, dist, cost)
		if withDelay {
			s1 := w.Nest.Stmts()[0]
			w.CostOf = func(s *deps.Stmt, idx []int64) int64 {
				if s == s1 && idx[0] == delayed {
					return delay
				}
				return s.Cost
			}
		}
		return codegen.Run(w, sch, baseCfg(4))
	}
	t := &Table{
		ID: "E3.1",
		Title: fmt.Sprintf("Distance-%d recurrence, iteration %d delayed %dx (N=%d, P=4)",
			dist, delayed, delay/cost, n),
		Columns: []string{"scheme", "cycles (uniform)", "cycles (delayed)", "penalty",
			"wait cycles (delayed)"},
	}
	schemes := []codegen.Scheme{
		codegen.ProcessOriented{X: 16, Improved: true},
		codegen.StatementOriented{},
	}
	var penalties []int64
	for _, sch := range schemes {
		smooth, err := run(sch, false)
		if err != nil {
			return nil, err
		}
		slow, err := run(sch, true)
		if err != nil {
			return nil, err
		}
		penalty := slow.Stats.Cycles - smooth.Stats.Cycles
		penalties = append(penalties, penalty)
		t.AddRow(sch.Name(), smooth.Stats.Cycles, slow.Stats.Cycles, penalty,
			slow.Stats.WaitSyncTotal())
	}
	t.Note("process counters are shared vertically (within a process): the delayed iteration")
	t.Note("stalls only its true dependents; statement counters serialize instances, so the")
	t.Note("stall propagates to every later iteration's advance.")
	if len(penalties) == 2 && penalties[1] <= penalties[0] {
		t.Note("WARNING: expected statement-oriented penalty to exceed process-oriented.")
	}
	return []*Table{t}, nil
}

// E4SchemeComparison is the cross-scheme comparison on the canonical loop,
// plus the generated program of Fig 4.2b.
func E4SchemeComparison() ([]*Table, error) {
	const n, cost = 96, 4
	t := &Table{
		ID:    "E4.1",
		Title: fmt.Sprintf("All schemes on the Fig 2.1 loop (N=%d, cost=%d, P=4)", n, cost),
		Columns: []string{"scheme", "sync vars", "init ops", "storage", "cycles", "speedup",
			"util", "bus tx", "module acc", "sync ops"},
	}
	schemes := []codegen.Scheme{
		codegen.ProcessOriented{X: 8, Improved: true},
		codegen.ProcessOriented{X: 8, Improved: false},
		codegen.StatementOriented{},
		codegen.RefBased{},
		codegen.NewInstanceBased(),
	}
	for _, sch := range schemes {
		res, err := codegen.Run(workloads.Fig21(n, cost), sch, baseCfg(4))
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Scheme, res.Foot.SyncVars, res.Foot.InitOps, res.Foot.StorageWords,
			res.Stats.Cycles, res.Speedup(), res.Stats.Utilization(),
			res.Stats.BusBroadcasts, res.Stats.ModuleAccesses, res.Stats.SyncOps)
	}
	t.Note("every run is checked for serial equivalence before being reported.")

	t2 := &Table{
		ID:      "E4.2",
		Title:   "Generated program for one interior iteration (basic primitives, Fig 4.2b)",
		Columns: []string{"#", "operation"},
	}
	w := workloads.Fig21(n, cost)
	m := sim.New(baseCfg(4))
	w.Setup(m.Mem())
	prog, _, err := codegen.ProcessOriented{X: 4, Improved: false}.Instrument(m, w)
	if err != nil {
		return nil, err
	}
	for i, op := range prog(10) {
		t2.AddRow(i+1, op.Tag)
	}
	return []*Table{t, t2}, nil
}

// E5ImprovedPrimitives measures Fig 4.3's improved primitives and the
// section-6 write-coverage optimization.
func E5ImprovedPrimitives() ([]*Table, error) {
	const n, cost = 96, 2
	t := &Table{
		ID:      "E5.1",
		Title:   fmt.Sprintf("Basic vs improved primitives, write coverage on/off (N=%d, X=2, P=4)", n),
		Columns: []string{"primitives", "bus latency", "coverage", "bus tx", "tx saved", "cycles", "wait cycles"},
	}
	for _, improved := range []bool{false, true} {
		for _, lat := range []int64{1, 8} {
			for _, coverage := range []bool{false, true} {
				cfg := baseCfg(4)
				cfg.BusLatency = lat
				cfg.BusCoverage = coverage
				res, err := codegen.Run(workloads.Fig21(n, cost),
					codegen.ProcessOriented{X: 2, Improved: improved}, cfg)
				if err != nil {
					return nil, err
				}
				name := "basic (set/release)"
				if improved {
					name = "improved (mark/transfer)"
				}
				t.AddRow(name, lat, onOff(coverage), res.Stats.BusBroadcasts, res.Stats.BusSaved,
					res.Stats.Cycles, res.Stats.WaitSyncTotal())
			}
		}
	}
	t.Note("mark_PC skips updates while ownership is pending, so the improved primitives")
	t.Note("broadcast less; coverage elides queued writes superseded by a newer one, which")
	t.Note("only happens once the bus is slow enough for writes to queue up.")
	return []*Table{t}, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
