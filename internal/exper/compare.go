package exper

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// pointKey identifies one grid point across snapshots.
type pointKey struct {
	Workload   string
	Scheme     string
	Processors int
}

// CompareResult is the outcome of diffing two benchmark snapshots. The gate
// metric is normalized cycle throughput: simulated cycles per wall nanosecond,
// multiplied by the measuring host's calibration time so raw scalar speed
// cancels and a baseline recorded on one machine can gate runs on another.
type CompareResult struct {
	Report string // human-readable per-point delta table + summary

	CycleMismatches int // points whose simulated cycle counts differ
	MissingPoints   int // points present in only one snapshot

	OldNorm, NewNorm float64 // normalized cycle throughput (NaN if untimed)
	DeltaPct         float64 // NewNorm vs OldNorm, percent (NaN if untimed)
}

// normRate is cycles per wall nanosecond scaled by the host calibration time.
func normRate(cycles, wall, calib int64) float64 {
	if wall <= 0 || calib <= 0 {
		return math.NaN()
	}
	return float64(cycles) / float64(wall) * float64(calib)
}

// Compare diffs two snapshots point by point. Simulated measurements (cycles,
// sync ops, ...) are deterministic, so any cycle mismatch means the engine's
// behavior changed between the two builds; wall times are the only
// host-dependent figures and are compared after calibration normalization.
func Compare(oldSnap, newSnap *BenchSnapshot) *CompareResult {
	res := &CompareResult{}
	oldByKey := make(map[pointKey]*BenchRecord, len(oldSnap.Records))
	for i := range oldSnap.Records {
		r := &oldSnap.Records[i]
		oldByKey[pointKey{r.Workload, r.Scheme, r.Processors}] = r
	}
	newByKey := make(map[pointKey]*BenchRecord, len(newSnap.Records))
	keys := make([]pointKey, 0, len(newSnap.Records))
	for i := range newSnap.Records {
		r := &newSnap.Records[i]
		k := pointKey{r.Workload, r.Scheme, r.Processors}
		newByKey[k] = r
		keys = append(keys, k)
	}
	for k := range oldByKey {
		if _, ok := newByKey[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.Processors < b.Processors
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "benchmark snapshot delta: %s -> %s\n", oldSnap.Version, newSnap.Version)
	fmt.Fprintf(&sb, "calibration: old %s  new %s\n\n", fmtNanos(oldSnap.CalibNanos), fmtNanos(newSnap.CalibNanos))
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tscheme\tP\tcycles(old)\tcycles(new)\twall(old)\twall(new)\tnorm-thpt Δ")

	var oldCycles, oldWall, newCycles, newWall int64
	for _, k := range keys {
		or, hasOld := oldByKey[k]
		nr, hasNew := newByKey[k]
		switch {
		case !hasOld:
			res.MissingPoints++
			fmt.Fprintf(tw, "%s\t%s\t%d\t-\t%d\t-\t%s\tnew point\n",
				k.Workload, k.Scheme, k.Processors, nr.Cycles, fmtNanos(nr.WallNanos))
			continue
		case !hasNew:
			res.MissingPoints++
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t-\t%s\t-\tpoint removed\n",
				k.Workload, k.Scheme, k.Processors, or.Cycles, fmtNanos(or.WallNanos))
			continue
		}
		mark := ""
		if or.Cycles != nr.Cycles {
			res.CycleMismatches++
			mark = " [cycles changed]"
		}
		oldCycles += or.Cycles
		oldWall += or.WallNanos
		newCycles += nr.Cycles
		newWall += nr.WallNanos
		delta := "-"
		po := normRate(or.Cycles, or.WallNanos, oldSnap.CalibNanos)
		pn := normRate(nr.Cycles, nr.WallNanos, newSnap.CalibNanos)
		if !math.IsNaN(po) && !math.IsNaN(pn) {
			delta = fmt.Sprintf("%+.1f%%", (pn/po-1)*100)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\t%s\t%s%s\n",
			k.Workload, k.Scheme, k.Processors, or.Cycles, nr.Cycles,
			fmtNanos(or.WallNanos), fmtNanos(nr.WallNanos), delta, mark)
	}
	tw.Flush()

	res.OldNorm = normRate(oldCycles, oldWall, oldSnap.CalibNanos)
	res.NewNorm = normRate(newCycles, newWall, newSnap.CalibNanos)
	res.DeltaPct = (res.NewNorm/res.OldNorm - 1) * 100

	sb.WriteByte('\n')
	if res.CycleMismatches > 0 {
		fmt.Fprintf(&sb, "WARNING: %d point(s) changed simulated cycle counts — engine behavior differs between builds\n", res.CycleMismatches)
	}
	if res.MissingPoints > 0 {
		fmt.Fprintf(&sb, "WARNING: %d point(s) present in only one snapshot\n", res.MissingPoints)
	}
	if math.IsNaN(res.DeltaPct) {
		sb.WriteString("aggregate: no normalized throughput (a snapshot lacks wall timing or calibration)\n")
	} else {
		fmt.Fprintf(&sb, "aggregate normalized cycle throughput: old %.1f  new %.1f  (%+.1f%%)\n",
			res.OldNorm, res.NewNorm, res.DeltaPct)
		fmt.Fprintf(&sb, "aggregate wall time: old %s  new %s over %d shared points\n",
			fmtNanos(oldWall), fmtNanos(newWall), len(keys)-res.MissingPoints)
	}
	res.Report = sb.String()
	return res
}

// Gate returns a non-nil error when the new snapshot's normalized cycle
// throughput regressed by more than pct percent (or when the snapshots cannot
// be compared at all). Cycle-count changes alone do not fail the gate — they
// are legitimate when simulator semantics intentionally change, and the
// determinism/canon tests are the oracle for unintentional ones.
func (r *CompareResult) Gate(pct float64) error {
	if math.IsNaN(r.DeltaPct) {
		return fmt.Errorf("bench gate: snapshots lack wall timing or calibration; cannot compute normalized throughput")
	}
	if r.MissingPoints > 0 {
		return fmt.Errorf("bench gate: %d grid point(s) missing from one snapshot", r.MissingPoints)
	}
	if r.DeltaPct < -pct {
		return fmt.Errorf("bench gate: normalized cycle throughput regressed %.1f%% (threshold %.1f%%)", -r.DeltaPct, pct)
	}
	return nil
}

// fmtNanos renders a nanosecond count as milliseconds for the delta table.
func fmtNanos(n int64) string {
	if n <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", float64(n)/1e6)
}
