package exper

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// E14DataLatency measures the cost of the paper's correctness requirement
// (1) (section 2.2): a dependence source may signal completion only after
// its written value is observable in shared memory. The code generators
// insert a commit phase of DataLatency cycles between a writing statement
// and its PC/SC/key publication; the sweep shows how the schemes absorb
// growing write-visibility latency.
func E14DataLatency() ([]*Table, error) {
	const n, cost = 96, 4
	t := &Table{
		ID:      "E14.1",
		Title:   fmt.Sprintf("Write-visibility (commit) latency sweep, Fig 2.1 loop (N=%d, P=4)", n),
		Columns: []string{"data latency", "scheme", "cycles", "speedup", "wait cycles"},
	}
	for _, lat := range []int64{0, 2, 8} {
		for _, sch := range []codegen.Scheme{
			codegen.ProcessOriented{X: 8, Improved: true},
			codegen.StatementOriented{},
			codegen.RefBased{},
		} {
			cfg := baseCfg(4)
			cfg.DataLatency = lat
			res, err := codegen.Run(workloads.Fig21(n, cost), sch, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(lat, res.Scheme, res.Stats.Cycles, res.Speedup(), res.Stats.WaitSyncTotal())
		}
	}
	t.Note("the serial baseline excludes commit phases (one processor observes its own")
	t.Note("writes immediately), so growing latency costs parallel speedup across the board;")
	t.Note("schemes that publish less often amortize it better.")

	t2 := &Table{
		ID:      "E14.2",
		Title:   "Grouping absorbs commit latency (stencil pipeline, N=24, data latency 8)",
		Columns: []string{"G", "cycles", "speedup", "bus tx"},
	}
	for _, g := range []int64{1, 4, 8} {
		cfg := baseCfg(4)
		cfg.DataLatency = 8
		res, err := codegen.Run(workloads.Stencil(24, 4), codegen.PipelinedOuter{X: 8, G: g}, cfg)
		if err != nil {
			return nil, err
		}
		t2.AddRow(g, res.Stats.Cycles, res.Speedup(), res.Stats.BusBroadcasts)
	}
	return []*Table{t, t2}, nil
}
