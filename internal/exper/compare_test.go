package exper

import (
	"math"
	"strings"
	"testing"
)

// mkSnap builds a synthetic snapshot: each point's cycles and wall time, on a
// host whose calibration loop took calib nanoseconds.
func mkSnap(calib int64, points ...BenchRecord) *BenchSnapshot {
	return &BenchSnapshot{Version: SnapshotVersion, Go: "gotest", CalibNanos: calib, Records: points}
}

func pt(w, s string, p int, cycles, wall int64) BenchRecord {
	return BenchRecord{Workload: w, Scheme: s, Processors: p, Cycles: cycles, WallNanos: wall}
}

func TestCompareIdenticalPasses(t *testing.T) {
	a := mkSnap(100, pt("w", "s", 4, 1000, 50), pt("w", "s", 8, 900, 40))
	res := Compare(a, a)
	if res.CycleMismatches != 0 || res.MissingPoints != 0 {
		t.Fatalf("mismatches=%d missing=%d on self-compare", res.CycleMismatches, res.MissingPoints)
	}
	if math.Abs(res.DeltaPct) > 1e-9 {
		t.Fatalf("DeltaPct = %v on self-compare, want 0", res.DeltaPct)
	}
	if err := res.Gate(10); err != nil {
		t.Fatalf("gate failed on self-compare: %v", err)
	}
}

func TestCompareGateFailsOnRegression(t *testing.T) {
	old := mkSnap(100, pt("w", "s", 4, 1000, 50))
	slow := mkSnap(100, pt("w", "s", 4, 1000, 100)) // half the throughput
	res := Compare(old, slow)
	if res.DeltaPct > -49 {
		t.Fatalf("DeltaPct = %.1f, want about -50", res.DeltaPct)
	}
	if err := res.Gate(10); err == nil {
		t.Fatal("gate passed a 50% regression")
	}
	// The same wall times on a proportionally slower host (calibration loop
	// also took 2x) must normalize away and pass.
	slowHost := mkSnap(200, pt("w", "s", 4, 1000, 100))
	if err := Compare(old, slowHost).Gate(10); err != nil {
		t.Fatalf("gate failed after host normalization: %v", err)
	}
}

func TestCompareGateToleratesSmallSlowdown(t *testing.T) {
	old := mkSnap(100, pt("w", "s", 4, 1000, 100))
	minor := mkSnap(100, pt("w", "s", 4, 1000, 105)) // ~4.8% slower
	if err := Compare(old, minor).Gate(10); err != nil {
		t.Fatalf("gate failed a within-threshold slowdown: %v", err)
	}
}

func TestCompareReportsCycleMismatch(t *testing.T) {
	old := mkSnap(100, pt("w", "s", 4, 1000, 50))
	chg := mkSnap(100, pt("w", "s", 4, 1100, 50))
	res := Compare(old, chg)
	if res.CycleMismatches != 1 {
		t.Fatalf("CycleMismatches = %d, want 1", res.CycleMismatches)
	}
	if !strings.Contains(res.Report, "cycles changed") {
		t.Fatalf("report does not flag the cycle change:\n%s", res.Report)
	}
}

func TestCompareGateFailsOnMissingPoints(t *testing.T) {
	old := mkSnap(100, pt("w", "s", 4, 1000, 50), pt("w", "s", 8, 900, 40))
	sub := mkSnap(100, pt("w", "s", 4, 1000, 50))
	res := Compare(old, sub)
	if res.MissingPoints != 1 {
		t.Fatalf("MissingPoints = %d, want 1", res.MissingPoints)
	}
	if err := res.Gate(10); err == nil {
		t.Fatal("gate passed with a grid point missing")
	}
}

func TestCompareUntimedSnapshotsCannotGate(t *testing.T) {
	// v1 snapshots carried no wall times; the gate must refuse rather than
	// silently pass.
	old := mkSnap(0, BenchRecord{Workload: "w", Scheme: "s", Processors: 4, Cycles: 1000})
	res := Compare(old, old)
	if !math.IsNaN(res.DeltaPct) {
		t.Fatalf("DeltaPct = %v for untimed snapshots, want NaN", res.DeltaPct)
	}
	if err := res.Gate(10); err == nil {
		t.Fatal("gate passed untimed snapshots")
	}
}

func TestCalibrateReturnsPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration loop in -short mode")
	}
	if c := Calibrate(); c <= 0 {
		t.Fatalf("Calibrate() = %d, want > 0", c)
	}
}
