package cluster

// Seeded link-fault injection for the peer transport.
//
// linkTransport wraps the HTTP transport under every outbound peer
// exchange this node makes — forwards, sweep sub-grid dispatches, probes,
// gossip, drain handoff and replica pushes all go through the per-peer
// service.Client or the probe client, and both hang this RoundTripper —
// so one fault.LinkPlan gives the whole peer protocol a single
// reproducible chaos schedule. Faults are decided by the destination
// *member*, resolved from the request host, which keeps the schedule a
// function of (seed, src, dst, endpoint, attempt) rather than of ports.

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/csrd-repro/datasync/internal/fault"
)

type linkTransport struct {
	n    *Node
	inj  *fault.LinkInjector
	base http.RoundTripper
	dst  map[string]string // URL host -> member ID
}

func newLinkTransport(n *Node, inj *fault.LinkInjector) *linkTransport {
	t := &linkTransport{
		n:    n,
		inj:  inj,
		base: http.DefaultTransport,
		dst:  make(map[string]string, n.full.Size()),
	}
	for _, m := range n.full.Members() {
		if u, err := url.Parse(m.Addr); err == nil && u.Host != "" {
			t.dst[u.Host] = m.ID
		}
	}
	return t
}

func (t *linkTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	id, ok := t.dst[req.URL.Host]
	if !ok {
		// Not a configured peer (user traffic through a shared transport
		// would land here); never inject.
		return t.base.RoundTrip(req)
	}
	v := t.inj.Decide(t.n.self.ID, id, req.URL.Path)
	switch {
	case v.Cut && v.Episode != "":
		return nil, fmt.Errorf("linkfault: partition %q cut %s->%s", v.Episode, t.n.self.ID, id)
	case v.Cut:
		return nil, fmt.Errorf("linkfault: black hole %s->%s", t.n.self.ID, id)
	case v.Drop:
		return nil, fmt.Errorf("linkfault: dropped %s->%s %s", t.n.self.ID, id, req.URL.Path)
	}
	if v.Delay > 0 {
		tm := time.NewTimer(v.Delay)
		select {
		case <-tm.C:
		case <-req.Context().Done():
			tm.Stop()
			return nil, req.Context().Err()
		}
	}
	if v.Dup {
		// Deliver the exchange twice and answer with the second delivery:
		// peer traffic is content-addressed and import-idempotent, so the
		// duplicate must be harmless — this probes that claim. Requests
		// whose body cannot be replayed (no GetBody) skip the duplicate.
		if dup := t.cloneForDup(req); dup != nil {
			if first, err := t.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, first.Body)
				first.Body.Close()
			}
		}
	}
	return t.base.RoundTrip(req)
}

// cloneForDup builds an independently-sendable copy of req, or nil when
// the body cannot be replayed.
func (t *linkTransport) cloneForDup(req *http.Request) *http.Request {
	dup := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		dup.Body = nil
		return dup
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	dup.Body = body
	return dup
}
