package cluster

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable clock for admission tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testAdmission(pol TenantPolicy) (*Admission, *fakeClock) {
	a := NewAdmission(pol)
	clk := newFakeClock()
	a.now = clk.now
	return a, clk
}

// TestAdmissionTokenBucket: a tenant burns its burst, is shed with a
// whole-second Retry-After, and earns tokens back at Rate as time passes.
func TestAdmissionTokenBucket(t *testing.T) {
	a, clk := testAdmission(TenantPolicy{Rate: 2, Burst: 2})

	for i := 0; i < 2; i++ {
		release, _, ok := a.Admit("hot")
		if !ok {
			t.Fatalf("request %d within burst was shed", i)
		}
		release()
	}
	_, retryAfter, ok := a.Admit("hot")
	if ok {
		t.Fatal("request over burst was admitted")
	}
	if retryAfter < time.Second || retryAfter%time.Second != 0 {
		t.Errorf("retryAfter = %v, want a whole positive number of seconds", retryAfter)
	}

	// Rate 2/s: half a second accrues one token.
	clk.advance(500 * time.Millisecond)
	if release, _, ok := a.Admit("hot"); !ok {
		t.Fatal("request after token accrual was shed")
	} else {
		release()
	}

	// An unrelated tenant has its own untouched bucket.
	if release, _, ok := a.Admit("cool"); !ok {
		t.Fatal("fresh tenant was shed by another tenant's exhaustion")
	} else {
		release()
	}

	sheds := a.Sheds()
	if len(sheds) != 1 || sheds[0].Tenant != "hot" || sheds[0].Shed != 1 {
		t.Errorf("sheds = %+v, want exactly one shed for tenant hot", sheds)
	}
}

// TestAdmissionInFlight: the in-flight quota sheds concurrent excess and
// recovers as releases come back; release is idempotent.
func TestAdmissionInFlight(t *testing.T) {
	a, _ := testAdmission(TenantPolicy{MaxInFlight: 2})

	r1, _, ok1 := a.Admit("t")
	r2, _, ok2 := a.Admit("t")
	if !ok1 || !ok2 {
		t.Fatal("requests within the in-flight quota were shed")
	}
	if _, retryAfter, ok := a.Admit("t"); ok || retryAfter <= 0 {
		t.Fatalf("third concurrent request: ok=%v retryAfter=%v, want shed with positive Retry-After", ok, retryAfter)
	}
	r1()
	r1() // double release must not free a second slot
	if r3, _, ok := a.Admit("t"); !ok {
		t.Fatal("request after release was shed")
	} else {
		defer r3()
	}
	if _, _, ok := a.Admit("t"); ok {
		t.Fatal("double release freed two slots")
	}
	r2()
}

// TestAdmissionChargeDebt: Charge debits beyond the burst (work debt), so
// a tenant that just paid for a large sweep is shed until the debt
// amortizes at the configured rate — but the charge itself never rejects,
// so work larger than the burst stays runnable.
func TestAdmissionChargeDebt(t *testing.T) {
	a, clk := testAdmission(TenantPolicy{Rate: 1, Burst: 5})

	release, _, ok := a.Admit("hot") // 5 tokens -> 4
	if !ok {
		t.Fatal("first request was shed")
	}
	release()
	a.Charge("hot", 10) // 4 tokens -> -6: deeper than the burst allows

	_, retryAfter, ok := a.Admit("hot")
	if ok {
		t.Fatal("tenant in work debt was admitted")
	}
	if retryAfter < 7*time.Second {
		t.Errorf("retryAfter = %v, want >= 7s (6 tokens of debt plus the next whole token)", retryAfter)
	}
	clk.advance(7 * time.Second) // -6 + 7 = 1 token
	if release, _, ok := a.Admit("hot"); !ok {
		t.Fatal("tenant still shed after the debt amortized")
	} else {
		release()
	}

	// Charge is a no-op without rate limiting, for zero weight, and on a
	// nil Admission.
	b, _ := testAdmission(TenantPolicy{MaxInFlight: 1})
	b.Charge("t", 100)
	if release, _, ok := b.Admit("t"); !ok {
		t.Fatal("Charge debited a tenant despite rate limiting being disabled")
	} else {
		release()
	}
	a.Charge("hot", 0)
	var nilA *Admission
	nilA.Charge("t", 5)
}

// TestAdmissionDisabled: a zero policy (and a nil Admission) admits
// everything — single-node deployments pay nothing.
func TestAdmissionDisabled(t *testing.T) {
	a, _ := testAdmission(TenantPolicy{})
	for i := 0; i < 100; i++ {
		release, _, ok := a.Admit("any")
		if !ok {
			t.Fatal("disabled policy shed a request")
		}
		release()
	}
	var nilA *Admission
	if release, _, ok := nilA.Admit("any"); !ok {
		t.Fatal("nil Admission shed a request")
	} else {
		release()
	}
}

// TestAdmissionDefaultTenant: requests without a tenant share one bucket.
func TestAdmissionDefaultTenant(t *testing.T) {
	a, _ := testAdmission(TenantPolicy{Rate: 1, Burst: 1})
	release, _, ok := a.Admit("")
	if !ok {
		t.Fatal("first anonymous request shed")
	}
	release()
	if _, _, ok := a.Admit(""); ok {
		t.Fatal("anonymous requests do not share the default bucket")
	}
	if sheds := a.Sheds(); len(sheds) != 1 || sheds[0].Tenant != DefaultTenant {
		t.Errorf("sheds = %+v, want one shed under %q", sheds, DefaultTenant)
	}
}

// TestAdmissionCardinalityBound: a client minting a fresh tenant name per
// request cannot grow the table past maxTenants — once every slot is held by
// an active tenant, new names degrade into the shared overflow bucket.
func TestAdmissionCardinalityBound(t *testing.T) {
	a, _ := testAdmission(TenantPolicy{MaxInFlight: 1})

	// Fill the table with active (in-flight, unevictable) tenants.
	releases := make([]func(), 0, maxTenants)
	for i := 0; i < maxTenants; i++ {
		release, _, ok := a.Admit(fmt.Sprintf("tenant-%d", i))
		if !ok {
			t.Fatalf("tenant %d shed while filling the table", i)
		}
		releases = append(releases, release)
	}
	if got := len(a.tenants); got != maxTenants {
		t.Fatalf("table holds %d tenants, want %d", got, maxTenants)
	}

	// A fresh name lands in the overflow bucket, which then limits the next
	// fresh name too — shared, stricter limiting instead of memory growth.
	release, _, ok := a.Admit("fresh-1")
	if !ok {
		t.Fatal("first overflow request shed")
	}
	defer release()
	if _, _, ok := a.Admit("fresh-2"); ok {
		t.Fatal("distinct overflow tenants did not share the overflow bucket's quota")
	}
	if got := len(a.tenants); got > maxTenants+1 {
		t.Errorf("table grew to %d tenants, bound is %d + overflow", got, maxTenants)
	}

	// Once a tenant goes idle its slot is reclaimable for a new name.
	for _, r := range releases {
		r()
	}
	if release, _, ok := a.Admit("brand-new"); !ok {
		t.Fatal("new tenant shed even though idle slots were reclaimable")
	} else {
		release()
	}
}

// TestAdmissionIdleEvictionRecreatesFreshBucket: at the table cap, an idle
// tenant whose bucket has refilled to full is evicted for a new name — and
// when the evicted tenant comes back, it gets a fresh full bucket, because
// an idle-full bucket is indistinguishable from a fresh one (eviction can
// never grant or remove budget).
func TestAdmissionIdleEvictionRecreatesFreshBucket(t *testing.T) {
	a, clk := testAdmission(TenantPolicy{Rate: 1, Burst: 2})

	// Drain the victim to zero tokens, then let it go idle.
	for i := 0; i < 2; i++ {
		release, _, ok := a.Admit("victim")
		if !ok {
			t.Fatalf("victim request %d within burst was shed", i)
		}
		release()
	}

	// Fill the rest of the table with tenants held in flight: inflight > 0
	// makes them unevictable regardless of tokens.
	var releases []func()
	for i := len(a.tenants); i < maxTenants; i++ {
		release, _, ok := a.Admit(fmt.Sprintf("held-%d", i))
		if !ok {
			t.Fatalf("tenant %d shed while filling the table", i)
		}
		releases = append(releases, release)
	}

	// The victim's bucket refills to full while idle: now evictable.
	clk.advance(5 * time.Second)

	// A new name at the cap evicts the victim and gets its own bucket —
	// not the overflow bucket.
	release, _, ok := a.Admit("newcomer")
	if !ok {
		t.Fatal("newcomer shed despite an evictable idle slot")
	}
	if a.tenants["victim"] != nil {
		t.Fatal("idle-full victim survived eviction at the table cap")
	}
	if a.tenants["newcomer"] == nil {
		t.Fatal("newcomer was remapped to overflow despite an evictable slot")
	}
	release()

	// The evicted victim returns: once another idle-full slot exists, its
	// next request re-creates a fresh bucket with the full burst.
	clk.advance(5 * time.Second) // newcomer refills to full, becomes evictable
	for i := 0; i < 2; i++ {
		release, _, ok := a.Admit("victim")
		if !ok {
			t.Fatalf("evicted victim's request %d was shed; want a fresh full bucket", i)
		}
		release()
	}
	if a.tenants["victim"] == nil {
		t.Fatal("victim's return did not re-create its bucket")
	}

	for _, r := range releases {
		r()
	}
}

// TestAdmissionOverflowFallbackUnderRatePolicy: under the injectable clock
// with a rate policy, a table at the cap whose buckets are all freshly
// drained (nothing idle-full, nothing evictable) routes new tenant names
// to the shared overflow bucket, whose sheds are attributed to it.
func TestAdmissionOverflowFallbackUnderRatePolicy(t *testing.T) {
	a, clk := testAdmission(TenantPolicy{Rate: 1, Burst: 1})

	// Every bucket is drained at the same instant: no idle-full slot exists.
	for i := 0; i < maxTenants; i++ {
		release, _, ok := a.Admit(fmt.Sprintf("t-%d", i))
		if !ok {
			t.Fatalf("tenant %d shed while filling the table", i)
		}
		release()
	}

	// A fresh name cannot evict anything and lands in the overflow bucket.
	release, _, ok := a.Admit("fresh-a")
	if !ok {
		t.Fatal("first overflow request shed (overflow bucket starts full)")
	}
	release()
	if a.tenants["fresh-a"] != nil {
		t.Fatal("fresh tenant got its own bucket past the cap with nothing evictable")
	}
	if a.tenants[overflowTenant] == nil {
		t.Fatal("overflow bucket was not created")
	}

	// The next fresh name shares the (now drained) overflow bucket, and the
	// shed is attributed to the overflow tenant.
	if _, _, ok := a.Admit("fresh-b"); ok {
		t.Fatal("second overflow tenant did not share the overflow bucket's quota")
	}
	foundOverflowShed := false
	for _, s := range a.Sheds() {
		if s.Tenant == overflowTenant && s.Shed >= 1 {
			foundOverflowShed = true
		}
	}
	if !foundOverflowShed {
		t.Errorf("sheds %+v missing the overflow tenant's count", a.Sheds())
	}

	// Time passes, the per-tenant buckets refill and become evictable: a
	// fresh name escapes the overflow bucket and gets its own again.
	clk.advance(2 * time.Second)
	release, _, ok = a.Admit("fresh-c")
	if !ok {
		t.Fatal("fresh tenant shed after slots became evictable")
	}
	release()
	if a.tenants["fresh-c"] == nil {
		t.Fatal("fresh tenant stayed in overflow after slots became evictable")
	}
}
