package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/csrd-repro/datasync/internal/service"
)

// maxSweepPlans bounds how many times one sweep is re-planned after a
// ring-version fence reject. Each re-plan regroups only the not-yet-done
// points against the coordinator's then-current live ring, so the bound is
// on wasted planning, not on progress: points finished under an earlier
// plan stay finished.
const maxSweepPlans = 5

// sweepTask is one owner-aligned sub-grid of a sweep: indices into the full
// point list, preferring execution on the node that owns those keys (so
// results land in — and later hit — the owner's shard of the cluster cache).
type sweepTask struct {
	owner   string
	indices []int
}

// sweepRun coordinates one cluster-wide sweep with work-stealing. One
// worker per live member drains a per-owner task queue; a worker whose own
// queue is empty steals from the longest remaining queue. A peer that stops
// answering is marked dead, its in-flight task is requeued, and its worker
// exits — survivors (always including self, which executes in-process and
// cannot die) steal the orphaned tasks, so the sweep completes with a
// correct merged front or fails point-by-point, but never hangs.
type sweepRun struct {
	n    *Node
	req  service.SweepRequest
	sels []service.GridSel
	// fence is the version of the live ring this plan was computed
	// against; every sub-grid dispatch carries it, and an executor whose
	// live view disagrees answers 409 instead of evaluating.
	fence string

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*sweepTask
	pending int  // tasks queued or executing; 0 means the sweep is drained
	skewed  bool // a dispatch was fenced off: abort this plan, re-plan

	points []service.SweepPoint
	done   []bool
}

// coordinateSweep is the cluster entry point for POST /sweep: it shards the
// grid by key ownership, fans the sub-grids across the cluster with work
// stealing, and merges the answers into the same response — byte for byte —
// a single node would produce. Requests the coordinator cannot expand fall
// through to the local handler, which owns the error vocabulary.
func (n *Node) coordinateSweep(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	if deg, reason := n.degraded(); deg {
		// A degraded node is the minority side of a partition: the
		// majority is (or will be) coordinating sweeps against the live
		// set both sides converge to after heal, and a minority
		// coordinator would double-execute the grid against a view about
		// to be retired. Keyed reads stay allowed — replicas make those
		// safe — but cluster-wide coordination is refused.
		w.Header().Set("Retry-After", "1")
		n.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("cluster: degraded node (%s) refuses to coordinate a cluster sweep; retry against the majority partition", reason))
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read request: %w", err))
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	var req service.SweepRequest
	if err := strictUnmarshal(body, &req); err != nil {
		n.serveLocal(w, r, inner)
		return
	}
	// Validate exactly what EvalSweep validates, so an invalid sweep gets
	// the identical local 400 instead of a fan-out of per-point failures.
	if _, err := req.Scheme.Build(); err != nil {
		n.serveLocal(w, r, inner)
		return
	}
	sels, keys, err := service.SweepPointKeys(req)
	if err != nil {
		n.serveLocal(w, r, inner)
		return
	}

	// Weight admission by the sweep's expanded size: the middleware charged
	// one token on arrival; charge the rest — one per StealChunk-sized
	// sub-grid — so a maxSweepPoints grid cannot ride through per-tenant
	// admission at the cost of a single /run.
	if extra := (len(sels)+n.opts.StealChunk-1)/n.opts.StealChunk - 1; extra > 0 {
		n.adm.Charge(r.Header.Get(HeaderTenant), extra)
	}

	if n.ring.Load().Size() == 1 {
		n.serveLocal(w, r, inner)
		return
	}

	// points and done persist across re-plans: a fence reject aborts the
	// plan, never the results already merged under it.
	points := make([]service.SweepPoint, len(sels))
	done := make([]bool, len(sels))

	for plan := 0; plan < maxSweepPlans; plan++ {
		if plan > 0 {
			n.sweepReplans.Add(1)
			// Views converge on probe cadence (gossip rides probes), so
			// re-planning sooner than that just re-collects the same 409.
			delay := n.opts.ProbeInterval
			if delay <= 0 {
				delay = 250 * time.Millisecond
			}
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		}
		if r.Context().Err() != nil {
			break
		}

		ring := n.ring.Load()
		run := &sweepRun{
			n:      n,
			req:    req,
			sels:   sels,
			fence:  ring.Version(),
			queues: make(map[string][]*sweepTask),
			points: points,
			done:   done,
		}
		run.cond = sync.NewCond(&run.mu)

		// Owner-aligned sub-grids over the not-yet-done points: group
		// indices by the owning member on this plan's live ring, then chunk
		// each group so stealing has useful granularity.
		byOwner := make(map[string][]int)
		for i, k := range keys {
			if done[i] {
				continue
			}
			id := ring.Owner(k).ID
			byOwner[id] = append(byOwner[id], i)
		}
		for id, idx := range byOwner {
			for start := 0; start < len(idx); start += n.opts.StealChunk {
				end := min(start+n.opts.StealChunk, len(idx))
				run.queues[id] = append(run.queues[id], &sweepTask{owner: id, indices: idx[start:end]})
				run.pending++
			}
		}
		if run.pending == 0 {
			break
		}
		if skewed := run.execute(r.Context()); !skewed {
			break
		}
		n.log.Warn("cluster: sweep plan fenced off by ring version skew; re-planning",
			"plan", plan+1, "fence", run.fence)
	}

	// Whatever is still undone after the loop failed for good: the context
	// ended, or the views never converged within the plan budget.
	for i, ok := range done {
		if !ok {
			cause := fmt.Errorf("cluster: ring version skew persisted across %d sweep plans", maxSweepPlans)
			if r.Context().Err() != nil {
				cause = fmt.Errorf("sweep abandoned: %v", context.Cause(r.Context()))
			}
			points[i] = failedSweepPoint(sels, i, cause)
		}
	}

	resp := service.SweepResponse{Workload: req.Workload.Name, Points: points}
	if wl, err := req.Workload.Build(); err == nil {
		resp.Workload = wl.Name
	}
	for _, p := range points {
		if p.Error != "" {
			resp.Failed++
			continue
		}
		resp.Evaluated++
		if p.Cached {
			resp.CacheHits++
		}
	}
	// The merged front is re-derived over the full point set, exactly as a
	// single node derives it — sub-grid fronts are never stitched together.
	resp.Pareto = service.ParetoFront(resp.Points)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderNode, n.self.ID)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// execute runs one worker per live member and waits for this plan to drain,
// abort on a fence reject, or see the request context end. It reports
// whether the plan was fenced off (the coordinator then re-plans); points
// left undone by a cancellation are marked failed by the coordinator after
// the plan budget, not here.
func (run *sweepRun) execute(ctx context.Context) bool {
	// A context that ends while workers wait must wake them up.
	stop := context.AfterFunc(ctx, func() {
		run.mu.Lock()
		run.cond.Broadcast()
		run.mu.Unlock()
	})
	defer stop()

	var wg sync.WaitGroup
	for _, m := range run.n.ring.Load().Members() {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			run.worker(ctx, m)
		}(m)
	}
	wg.Wait()

	run.mu.Lock()
	defer run.mu.Unlock()
	return run.skewed
}

// worker drains tasks for one member until the sweep completes, the
// context ends, or the member leaves the ring mid-sweep.
func (run *sweepRun) worker(ctx context.Context, m Member) {
	for {
		run.mu.Lock()
		var task *sweepTask
		var stolen bool
		for {
			if run.pending == 0 || run.skewed || ctx.Err() != nil {
				run.mu.Unlock()
				return
			}
			if m.ID != run.n.self.ID && !run.n.ring.Load().Has(m.ID) {
				// The member died (another worker's call failed): its
				// queued tasks stay stealable, but it executes nothing more.
				run.mu.Unlock()
				return
			}
			task, stolen = run.takeLocked(m.ID)
			if task != nil {
				break
			}
			run.cond.Wait()
		}
		run.mu.Unlock()

		if stolen {
			run.n.steals.Add(1)
		}
		run.runTask(ctx, m, task)
	}
}

// takeLocked pops a task for member id: its own queue first, otherwise a
// steal from the longest other queue (ID-ordered tiebreak, so concurrent
// runs disagree only on timing, never on which queue is "longest").
func (run *sweepRun) takeLocked(id string) (*sweepTask, bool) {
	if q := run.queues[id]; len(q) > 0 {
		run.queues[id] = q[1:]
		return q[0], false
	}
	owners := make([]string, 0, len(run.queues))
	for o, q := range run.queues {
		if o != id && len(q) > 0 {
			owners = append(owners, o)
		}
	}
	if len(owners) == 0 {
		return nil, false
	}
	sort.Slice(owners, func(i, j int) bool {
		a, b := owners[i], owners[j]
		if la, lb := len(run.queues[a]), len(run.queues[b]); la != lb {
			return la > lb
		}
		return a < b
	})
	q := run.queues[owners[0]]
	run.queues[owners[0]] = q[1:]
	return q[0], true
}

// runTask evaluates one sub-grid on member m: in-process for self, over the
// peer protocol otherwise. A peer that stops answering is marked dead and
// the task requeued for the survivors.
func (run *sweepRun) runTask(ctx context.Context, m Member, task *sweepTask) {
	sub := run.req
	sub.Grid = service.SweepGrid{}
	sub.Points = make([]service.GridSel, len(task.indices))
	for j, idx := range task.indices {
		sub.Points[j] = run.sels[idx]
	}

	if m.ID == run.n.self.ID {
		resp, err := run.n.srv.EvalSweep(ctx, sub)
		if err != nil {
			run.finish(task, nil, err)
			return
		}
		run.finish(task, resp.Points, nil)
		return
	}

	// Peer dispatch rides the retrying JSON path: a peer answering 429/503
	// (rebalancing load, briefly draining) is retried honoring Retry-After;
	// a peer that stops answering altogether is dead. The dispatch carries
	// this plan's ring-version fence, so an executor whose live view
	// disagrees answers 409 instead of evaluating.
	cl := *run.n.clients[m.ID]
	cl.Header = cl.Header.Clone()
	cl.Header.Set(HeaderSweepFence, run.fence)
	cl.Header.Set(HeaderRingVersion, run.fence)
	var resp service.SweepResponse
	err := cl.PostJSON(ctx, "/sweep", sub, &resp)
	if err == nil && len(resp.Points) == len(task.indices) {
		run.finish(task, resp.Points, nil)
		return
	}
	if err == nil {
		err = fmt.Errorf("cluster: peer %s answered %d points for a %d-point sub-grid", m.ID, len(resp.Points), len(task.indices))
	}
	if ctx.Err() != nil {
		run.requeue(task)
		return
	}
	var se *service.StatusError
	if errors.As(err, &se) && se.Code == http.StatusConflict {
		// Ring version skew, not peer death: the executor's live view
		// disagrees with the plan's. Abort this plan and let the
		// coordinator re-plan against its current live set — demoting the
		// executor here would manufacture exactly the split the fence
		// exists to prevent.
		run.n.log.Warn("cluster: sweep dispatch fenced off; aborting plan",
			"peer", m.ID, "fence", run.fence, "err", err)
		run.abortSkewed()
		return
	}
	run.n.peerErrors.Add(1)
	run.n.log.Warn("cluster: sweep dispatch failed; requeueing sub-grid", "peer", m.ID, "points", len(task.indices), "err", err)
	run.n.MarkDead(m.ID)
	run.requeue(task)
}

// abortSkewed flags the plan as fenced off and wakes every worker so the
// run drains immediately; the undone points re-plan, they are not failures.
func (run *sweepRun) abortSkewed() {
	run.mu.Lock()
	defer run.mu.Unlock()
	run.skewed = true
	run.cond.Broadcast()
}

// finish records a task's results (or its failure, spread over its points)
// and wakes waiting workers.
func (run *sweepRun) finish(task *sweepTask, pts []service.SweepPoint, err error) {
	run.mu.Lock()
	defer run.mu.Unlock()
	for j, idx := range task.indices {
		if err != nil {
			run.points[idx] = failedSweepPoint(run.sels, idx, err)
		} else {
			run.points[idx] = pts[j]
		}
		run.done[idx] = true
	}
	run.pending--
	run.cond.Broadcast()
}

// requeue returns an unexecuted task to its owner's queue (dead owners'
// queues are still steal targets, so the task reaches a survivor).
func (run *sweepRun) requeue(task *sweepTask) {
	run.mu.Lock()
	defer run.mu.Unlock()
	run.queues[task.owner] = append(run.queues[task.owner], task)
	run.cond.Broadcast()
}

// failedSweepPoint renders one point's failure in the same shape EvalSweep
// uses.
func failedSweepPoint(sels []service.GridSel, idx int, err error) service.SweepPoint {
	sel := sels[idx]
	pt := service.SweepPoint{X: sel.X, P: sel.P, Chunk: sel.Chunk, BusLatency: sel.BusLatency, Error: service.OneLine(err)}
	if sel.HasG {
		pt.G = sel.G
	}
	return pt
}
