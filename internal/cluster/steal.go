package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/csrd-repro/datasync/internal/service"
)

// sweepTask is one owner-aligned sub-grid of a sweep: indices into the full
// point list, preferring execution on the node that owns those keys (so
// results land in — and later hit — the owner's shard of the cluster cache).
type sweepTask struct {
	owner   string
	indices []int
}

// sweepRun coordinates one cluster-wide sweep with work-stealing. One
// worker per live member drains a per-owner task queue; a worker whose own
// queue is empty steals from the longest remaining queue. A peer that stops
// answering is marked dead, its in-flight task is requeued, and its worker
// exits — survivors (always including self, which executes in-process and
// cannot die) steal the orphaned tasks, so the sweep completes with a
// correct merged front or fails point-by-point, but never hangs.
type sweepRun struct {
	n    *Node
	req  service.SweepRequest
	sels []service.GridSel

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*sweepTask
	pending int // tasks queued or executing; 0 means the sweep is drained

	points []service.SweepPoint
	done   []bool
}

// coordinateSweep is the cluster entry point for POST /sweep: it shards the
// grid by key ownership, fans the sub-grids across the cluster with work
// stealing, and merges the answers into the same response — byte for byte —
// a single node would produce. Requests the coordinator cannot expand fall
// through to the local handler, which owns the error vocabulary.
func (n *Node) coordinateSweep(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read request: %w", err))
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	var req service.SweepRequest
	if err := strictUnmarshal(body, &req); err != nil {
		n.serveLocal(w, r, inner)
		return
	}
	// Validate exactly what EvalSweep validates, so an invalid sweep gets
	// the identical local 400 instead of a fan-out of per-point failures.
	if _, err := req.Scheme.Build(); err != nil {
		n.serveLocal(w, r, inner)
		return
	}
	sels, keys, err := service.SweepPointKeys(req)
	if err != nil {
		n.serveLocal(w, r, inner)
		return
	}

	// Weight admission by the sweep's expanded size: the middleware charged
	// one token on arrival; charge the rest — one per StealChunk-sized
	// sub-grid — so a maxSweepPoints grid cannot ride through per-tenant
	// admission at the cost of a single /run.
	if extra := (len(sels)+n.opts.StealChunk-1)/n.opts.StealChunk - 1; extra > 0 {
		n.adm.Charge(r.Header.Get(HeaderTenant), extra)
	}

	if n.ring.Load().Size() == 1 {
		n.serveLocal(w, r, inner)
		return
	}

	run := &sweepRun{
		n:      n,
		req:    req,
		sels:   sels,
		queues: make(map[string][]*sweepTask),
		points: make([]service.SweepPoint, len(sels)),
		done:   make([]bool, len(sels)),
	}
	run.cond = sync.NewCond(&run.mu)

	// Owner-aligned sub-grids: group point indices by the owning member,
	// then chunk each group so stealing has useful granularity.
	ring := n.ring.Load()
	byOwner := make(map[string][]int)
	for i, k := range keys {
		id := ring.Owner(k).ID
		byOwner[id] = append(byOwner[id], i)
	}
	for id, idx := range byOwner {
		for start := 0; start < len(idx); start += n.opts.StealChunk {
			end := min(start+n.opts.StealChunk, len(idx))
			run.queues[id] = append(run.queues[id], &sweepTask{owner: id, indices: idx[start:end]})
			run.pending++
		}
	}

	run.execute(r.Context())

	resp := service.SweepResponse{Workload: run.req.Workload.Name, Points: run.points}
	if wl, err := run.req.Workload.Build(); err == nil {
		resp.Workload = wl.Name
	}
	for _, p := range run.points {
		if p.Error != "" {
			resp.Failed++
			continue
		}
		resp.Evaluated++
		if p.Cached {
			resp.CacheHits++
		}
	}
	// The merged front is re-derived over the full point set, exactly as a
	// single node derives it — sub-grid fronts are never stitched together.
	resp.Pareto = service.ParetoFront(resp.Points)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderNode, n.self.ID)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// execute runs one worker per live member and waits for the sweep to drain
// (or the request context to end, in which case unfinished points report
// the cancellation).
func (run *sweepRun) execute(ctx context.Context) {
	// A context that ends while workers wait must wake them up.
	stop := context.AfterFunc(ctx, func() {
		run.mu.Lock()
		run.cond.Broadcast()
		run.mu.Unlock()
	})
	defer stop()

	var wg sync.WaitGroup
	for _, m := range run.n.ring.Load().Members() {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			run.worker(ctx, m)
		}(m)
	}
	wg.Wait()

	run.mu.Lock()
	defer run.mu.Unlock()
	for i, ok := range run.done {
		if !ok {
			run.points[i] = run.failedPoint(i, fmt.Errorf("sweep abandoned: %v", context.Cause(ctx)))
		}
	}
}

// worker drains tasks for one member until the sweep completes, the
// context ends, or the member leaves the ring mid-sweep.
func (run *sweepRun) worker(ctx context.Context, m Member) {
	for {
		run.mu.Lock()
		var task *sweepTask
		var stolen bool
		for {
			if run.pending == 0 || ctx.Err() != nil {
				run.mu.Unlock()
				return
			}
			if m.ID != run.n.self.ID && !run.n.ring.Load().Has(m.ID) {
				// The member died (another worker's call failed): its
				// queued tasks stay stealable, but it executes nothing more.
				run.mu.Unlock()
				return
			}
			task, stolen = run.takeLocked(m.ID)
			if task != nil {
				break
			}
			run.cond.Wait()
		}
		run.mu.Unlock()

		if stolen {
			run.n.steals.Add(1)
		}
		run.runTask(ctx, m, task)
	}
}

// takeLocked pops a task for member id: its own queue first, otherwise a
// steal from the longest other queue (ID-ordered tiebreak, so concurrent
// runs disagree only on timing, never on which queue is "longest").
func (run *sweepRun) takeLocked(id string) (*sweepTask, bool) {
	if q := run.queues[id]; len(q) > 0 {
		run.queues[id] = q[1:]
		return q[0], false
	}
	owners := make([]string, 0, len(run.queues))
	for o, q := range run.queues {
		if o != id && len(q) > 0 {
			owners = append(owners, o)
		}
	}
	if len(owners) == 0 {
		return nil, false
	}
	sort.Slice(owners, func(i, j int) bool {
		a, b := owners[i], owners[j]
		if la, lb := len(run.queues[a]), len(run.queues[b]); la != lb {
			return la > lb
		}
		return a < b
	})
	q := run.queues[owners[0]]
	run.queues[owners[0]] = q[1:]
	return q[0], true
}

// runTask evaluates one sub-grid on member m: in-process for self, over the
// peer protocol otherwise. A peer that stops answering is marked dead and
// the task requeued for the survivors.
func (run *sweepRun) runTask(ctx context.Context, m Member, task *sweepTask) {
	sub := run.req
	sub.Grid = service.SweepGrid{}
	sub.Points = make([]service.GridSel, len(task.indices))
	for j, idx := range task.indices {
		sub.Points[j] = run.sels[idx]
	}

	if m.ID == run.n.self.ID {
		resp, err := run.n.srv.EvalSweep(ctx, sub)
		if err != nil {
			run.finish(task, nil, err)
			return
		}
		run.finish(task, resp.Points, nil)
		return
	}

	// Peer dispatch rides the retrying JSON path: a peer answering 429/503
	// (rebalancing load, briefly draining) is retried honoring Retry-After;
	// a peer that stops answering altogether is dead.
	var resp service.SweepResponse
	err := run.n.clients[m.ID].PostJSON(ctx, "/sweep", sub, &resp)
	if err == nil && len(resp.Points) == len(task.indices) {
		run.finish(task, resp.Points, nil)
		return
	}
	if err == nil {
		err = fmt.Errorf("cluster: peer %s answered %d points for a %d-point sub-grid", m.ID, len(resp.Points), len(task.indices))
	}
	if ctx.Err() != nil {
		run.requeue(task)
		return
	}
	run.n.peerErrors.Add(1)
	run.n.log.Warn("cluster: sweep dispatch failed; requeueing sub-grid", "peer", m.ID, "points", len(task.indices), "err", err)
	run.n.MarkDead(m.ID)
	run.requeue(task)
}

// finish records a task's results (or its failure, spread over its points)
// and wakes waiting workers.
func (run *sweepRun) finish(task *sweepTask, pts []service.SweepPoint, err error) {
	run.mu.Lock()
	defer run.mu.Unlock()
	for j, idx := range task.indices {
		if err != nil {
			run.points[idx] = run.failedPoint(idx, err)
		} else {
			run.points[idx] = pts[j]
		}
		run.done[idx] = true
	}
	run.pending--
	run.cond.Broadcast()
}

// requeue returns an unexecuted task to its owner's queue (dead owners'
// queues are still steal targets, so the task reaches a survivor).
func (run *sweepRun) requeue(task *sweepTask) {
	run.mu.Lock()
	defer run.mu.Unlock()
	run.queues[task.owner] = append(run.queues[task.owner], task)
	run.cond.Broadcast()
}

// failedPoint renders one point's failure in the same shape EvalSweep uses.
func (run *sweepRun) failedPoint(idx int, err error) service.SweepPoint {
	sel := run.sels[idx]
	pt := service.SweepPoint{X: sel.X, P: sel.P, Chunk: sel.Chunk, BusLatency: sel.BusLatency, Error: service.OneLine(err)}
	if sel.HasG {
		pt.G = sel.G
	}
	return pt
}
