package cluster

// Partition-tolerance tests: ring-version-fenced sweeps, degraded-node
// coordination refusal, anti-entropy re-replication, bounded peer-internal
// bodies, probe jitter, asymmetric-partition gossip, and drain retargeting.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/service"
)

// syntheticEntries fabricates importable run-kind cache entries whose keys
// satisfy the owned predicate — membership scenarios need many keys on one
// node without paying for real simulations.
func syntheticEntries(t *testing.T, owned func(cache.Key) bool, count int) []service.CacheEntry {
	t.Helper()
	body, err := json.Marshal(service.RunResponse{Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	var out []service.CacheEntry
	for i := 0; len(out) < count; i++ {
		if i > 1_000_000 {
			t.Fatalf("could not find %d keys matching the predicate", count)
		}
		k := cache.Key(sha256.Sum256([]byte(fmt.Sprintf("synthetic-%d", i))))
		if owned(k) {
			out = append(out, service.CacheEntry{Key: k.String(), Kind: "run", Body: body})
		}
	}
	return out
}

func getMetrics(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSweepFenceRejectAndReplan: an executor whose live view disagrees with
// the coordinator's fences off the dispatch with 409; the coordinator
// re-plans against its current live set (never demoting the rejecting
// peer), and once the views agree the sweep completes oracle-identical.
func TestSweepFenceRejectAndReplan(t *testing.T) {
	tc := startCluster(t, 3, Options{StealChunk: 2})

	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid:     service.SweepGrid{X: []int{2, 4}, P: []int{2, 4}, Chunk: []int64{1, 2, 4}},
	}
	_, keys, err := service.SweepPointKeys(sweep)
	if err != nil {
		t.Fatal(err)
	}
	ownerCount := map[string]int{}
	for _, k := range keys {
		ownerCount[tc.nodes[0].Ring().Owner(k).ID]++
	}
	if len(ownerCount) != 3 {
		t.Fatalf("grid's 12 keys spread over %d of 3 members (%v); enlarge the test grid", len(ownerCount), ownerCount)
	}

	// Skew the views: the executor n1 has demoted n2, the coordinator n0
	// still holds the full ring. No probes run, so nothing converges the
	// views behind the test's back.
	tc.nodes[1].demote("n2", causeDrain)

	b, err := json.Marshal(sweep)
	if err != nil {
		t.Fatal(err)
	}
	type sweepOut struct {
		code int
		body []byte
		err  error
	}
	outc := make(chan sweepOut, 1)
	go func() {
		resp, err := http.Post(tc.addrs[0]+"/sweep", "application/json", bytes.NewReader(b))
		if err != nil {
			outc <- sweepOut{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		outc <- sweepOut{code: resp.StatusCode, body: body, err: err}
	}()

	// Once the executor has fenced off at least one dispatch, converge the
	// coordinator's view; its next plan carries a fence n1 agrees with.
	waitFor(t, 5*time.Second, func() bool {
		rejects, _ := tc.nodes[1].FenceStats()
		return rejects >= 1
	}, "executor to fence off a dispatch")
	tc.nodes[0].demote("n2", causeDrain)

	out := <-outc
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.code != http.StatusOK {
		t.Fatalf("/sweep across skewed views: %d %s", out.code, out.body)
	}
	var got service.SweepResponse
	if err := json.Unmarshal(out.body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 || got.Evaluated != 12 {
		t.Fatalf("sweep evaluated %d / failed %d of 12 points: %s", got.Evaluated, got.Failed, out.body)
	}

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	oracleSrv := service.NewServer(service.Options{Workers: 4, Logger: quiet})
	defer oracleSrv.Drain(context.Background())
	oracle, err := oracleSrv.EvalSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(oracle.Points) || len(got.Pareto) != len(oracle.Pareto) {
		t.Fatalf("cluster %d points / %d Pareto, oracle %d / %d",
			len(got.Points), len(got.Pareto), len(oracle.Points), len(oracle.Pareto))
	}
	for i := range oracle.Points {
		a, c := oracle.Points[i], got.Points[i]
		a.Cached, c.Cached = false, false
		if a != c {
			t.Errorf("point %d: oracle %+v vs cluster %+v", i, a, c)
		}
	}
	for i := range oracle.Pareto {
		a, c := oracle.Pareto[i], got.Pareto[i]
		a.Cached, c.Cached = false, false
		if a != c {
			t.Errorf("Pareto point %d: oracle %+v vs cluster %+v", i, a, c)
		}
	}

	if _, replans := tc.nodes[0].FenceStats(); replans < 1 {
		t.Errorf("coordinator replans = %d, want >= 1", replans)
	}
	// A fence reject is view skew, not peer death: the rejecting executor
	// must stay in the coordinator's ring and count no peer errors.
	if !tc.nodes[0].Ring().Has("n1") {
		t.Error("coordinator demoted the fencing executor")
	}
	if _, _, peerErrs := tc.nodes[0].Counters(); peerErrs != 0 {
		t.Errorf("peerErrors = %d after fence rejects, want 0", peerErrs)
	}
	if m := getMetrics(t, tc.addrs[1]); !strings.Contains(m, "dsserve_ring_fence_rejects_total") {
		t.Error("metrics missing dsserve_ring_fence_rejects_total")
	}
}

// TestDegradedNodeRefusesSweepCoordination: a node on the minority side of
// a partition (majority of configured peers demoted) answers /sweep with a
// retryable 503 instead of coordinating against a view about to be retired.
func TestDegradedNodeRefusesSweepCoordination(t *testing.T) {
	tc := startCluster(t, 3, Options{})
	tc.nodes[0].demote("n1", causeDrain)
	tc.nodes[0].demote("n2", causeDrain)

	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid:     service.SweepGrid{X: []int{2, 4}},
	}
	b, err := json.Marshal(sweep)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tc.addrs[0]+"/sweep", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /sweep: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded /sweep refusal carries no Retry-After")
	}
	if !strings.Contains(string(body), "refuses to coordinate") {
		t.Errorf("refusal body %q does not name the refusal", body)
	}
}

// TestAntiEntropyRepairsMissingReplica: keys present on their owner but
// missing from successors (filled before a membership transition, or their
// pushes lost) are measured via /internal/has and re-pushed until every
// owned key has its configured replica count again.
func TestAntiEntropyRepairsMissingReplica(t *testing.T) {
	tc := startCluster(t, 3, Options{Replicas: 1, AntiEntropyInterval: -1})
	full := tc.nodes[0].full
	byID := map[string]*Node{}
	for _, n := range tc.nodes {
		byID[n.self.ID] = n
	}

	// Six n0-owned keys land in n0's cache without the fill hook running —
	// exactly the shape a ring transition leaves behind.
	entries := syntheticEntries(t, func(k cache.Key) bool {
		return full.Owner(k).ID == "n0"
	}, 6)
	for _, e := range entries {
		if err := tc.nodes[0].srv.ImportCacheEntry(e); err != nil {
			t.Fatal(err)
		}
	}

	rep := tc.nodes[0].AntiEntropyScan(context.Background())
	if rep.Owned != 6 || rep.Underreplicated != 6 || rep.Enqueued != 6 || rep.Unverifiable != 0 {
		t.Fatalf("first scan: %+v, want 6 owned, 6 underreplicated, 6 enqueued", rep)
	}

	waitFor(t, 5*time.Second, func() bool {
		for _, e := range entries {
			k, err := cache.ParseKey(e.Key)
			if err != nil {
				t.Fatal(err)
			}
			succ := full.Successors(k, 1)
			if len(succ) != 1 || !byID[succ[0].ID].srv.CacheHas(k) {
				return false
			}
		}
		return true
	}, "every repair push to land on its successor")

	rep = tc.nodes[0].AntiEntropyScan(context.Background())
	if rep.Underreplicated != 0 || rep.Enqueued != 0 {
		t.Fatalf("post-repair scan: %+v, want 0 underreplicated", rep)
	}
	scans, pushes, under := tc.nodes[0].AntiEntropyStats()
	if scans < 2 || pushes != 6 || under != 0 {
		t.Errorf("stats = (%d scans, %d pushes, %d under), want (>=2, 6, 0)", scans, pushes, under)
	}
	m := getMetrics(t, tc.addrs[0])
	if !strings.Contains(m, "dsserve_antientropy_pushes_total 6") {
		t.Error("metrics missing dsserve_antientropy_pushes_total 6")
	}
	if !strings.Contains(m, "dsserve_underreplicated_keys 0") {
		t.Error("metrics missing dsserve_underreplicated_keys 0")
	}
}

// TestInternalBodyBounds413: peer-internal ingestion endpoints refuse
// oversized bodies with 413 instead of buffering them.
func TestInternalBodyBounds413(t *testing.T) {
	tc := startCluster(t, 2, Options{})
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, tc.addrs[0]+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderForwarded, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	huge := bytes.Repeat([]byte("x"), maxHandoffBody+1024)
	if resp := post("/internal/handoff", huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized handoff: %d, want 413", resp.StatusCode)
	}
	big := bytes.Repeat([]byte("x"), maxBody+1024)
	if resp := post("/internal/departing", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized departure: %d, want 413", resp.StatusCode)
	}

	// Control: a well-formed batch still imports.
	ok, err := json.Marshal(HandoffRequest{From: "n1", Reason: "drain"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := post("/internal/handoff", ok); resp.StatusCode != http.StatusOK {
		t.Errorf("well-formed handoff: %d, want 200", resp.StatusCode)
	}
}

// TestProbeJitterBounds: jittered probe intervals stay within ±10% of the
// configured base, across the rand01 extremes and a sampled distribution.
func TestProbeJitterBounds(t *testing.T) {
	base := time.Second
	if got := probeJitter(base, func() float64 { return 0 }); got != 900*time.Millisecond {
		t.Errorf("jitter at rand01=0: %v, want 900ms", got)
	}
	if got := probeJitter(base, func() float64 { return 0.5 }); got != time.Second {
		t.Errorf("jitter at rand01=0.5: %v, want 1s", got)
	}
	hi := probeJitter(base, func() float64 { return 0.999999 })
	if hi < 1099*time.Millisecond || hi >= 1100*time.Millisecond {
		t.Errorf("jitter at rand01~1: %v, want just under 1.1s", hi)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d := probeJitter(250*time.Millisecond, rng.Float64)
		if d < 225*time.Millisecond || d >= 275*time.Millisecond {
			t.Fatalf("sample %d: jitter %v outside [225ms, 275ms)", i, d)
		}
	}
}

// TestGossipAsymmetricPartition: n0 and n2 cannot reach n1, but n1 reaches
// both (an asymmetric link failure). The reachable majority converges on
// the same live set (without n1); n1 keeps its full view, and requests
// through n1 still complete in one forwarded hop — no forward loop.
func TestGossipAsymmetricPartition(t *testing.T) {
	tc := startCluster(t, 3, Options{
		ProbeInterval:  25 * time.Millisecond,
		SuspectAfter:   2,
		RejoinAfter:    2,
		DemoteCooldown: -1,
		LinkFaults:     &fault.LinkPlan{BlackHole: []string{"n0>n1", "n2>n1"}},
	})

	waitFor(t, 5*time.Second, func() bool {
		return tc.nodes[0].PeerState("n1") == "demoted" && tc.nodes[2].PeerState("n1") == "demoted"
	}, "n0 and n2 to demote unreachable n1")

	v0, v2 := tc.nodes[0].Ring().Version(), tc.nodes[2].Ring().Version()
	if v0 != v2 {
		t.Fatalf("majority ring versions diverge: n0=%s n2=%s", v0, v2)
	}
	if v1 := tc.nodes[1].Ring().Version(); v1 == v0 {
		t.Fatal("n1 (which reaches everyone) should still hold the full ring")
	}
	if tc.nodes[1].PeerState("n0") != "alive" || tc.nodes[1].PeerState("n2") != "alive" {
		t.Errorf("n1 peer states = %s/%s, want alive/alive (its outbound probes succeed)",
			tc.nodes[1].PeerState("n0"), tc.nodes[1].PeerState("n2"))
	}

	// A request through the isolated side must still complete: n1 forwards
	// to the owner per its full view, and the receiver serves it locally
	// (forwarded requests never re-forward), so no loop can form even
	// though the owner considers n1 dead.
	req := testRunReq
	for i := int64(24); ; i += 2 {
		req.Workload.N = i
		k, err := service.RunKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if tc.nodes[1].full.Owner(k).ID != "n1" {
			break
		}
	}
	resp, body := postNode(t, tc.addrs[1], "/run", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run through isolated n1: %d %s", resp.StatusCode, body)
	}

	if bh := tc.nodes[0].LinkCounts().BlackHoled; bh < 1 {
		t.Errorf("n0 blackholed exchanges = %d, want >= 1", bh)
	}
	if m := getMetrics(t, tc.addrs[0]); !strings.Contains(m, `dsserve_link_faults_injected_total{kind="blackhole"}`) {
		t.Error("metrics missing blackhole link-fault family")
	}
}

// TestDrainHandoffSkipsDeadTarget: a handoff target that dies mid-drain
// costs one failed batch, not the shutdown deadline — the remainder of its
// entries re-target their next live successor and the drain exits promptly.
func TestDrainHandoffSkipsDeadTarget(t *testing.T) {
	tc := startCluster(t, 3, Options{})
	full := tc.nodes[0].full

	entries := syntheticEntries(t, func(k cache.Key) bool {
		return full.Owner(k).ID == "n0"
	}, 200)
	for _, e := range entries {
		if err := tc.nodes[0].srv.ImportCacheEntry(e); err != nil {
			t.Fatal(err)
		}
	}

	// Expected receivers on the ring without n0: both peers must appear, and
	// the doomed target must hold more than one batch so the drain would
	// visibly stall if it retried every batch into the dead peer.
	rest, err := full.Without("n0")
	if err != nil {
		t.Fatal(err)
	}
	group := map[string]int{}
	for _, e := range entries {
		k, err := cache.ParseKey(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		group[rest.Owner(k).ID]++
	}
	if group["n1"] <= handoffBatch || group["n2"] == 0 {
		t.Fatalf("entry spread %v; need n1 > one batch and n2 > 0 — reseed the synthetic keys", group)
	}

	tc.kill(1)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	rep := tc.nodes[0].DrainHandoff(ctx)
	elapsed := time.Since(start)

	if elapsed > 5*time.Second {
		t.Errorf("drain took %v with one dead target; must skip, not retry into the deadline", elapsed)
	}
	if rep.FailedBatches != 1 {
		t.Errorf("failedBatches = %d, want exactly 1 (the batch that discovered the death)", rep.FailedBatches)
	}
	if rep.Peers != 1 {
		t.Errorf("receiving peers = %d, want 1 (only n2 survives)", rep.Peers)
	}
	want := len(entries) - handoffBatch
	if rep.Entries != want {
		t.Errorf("delivered %d entries, want %d (all but the one lost batch)", rep.Entries, want)
	}
	// The retargeted remainder really landed on n2.
	held := 0
	for _, e := range entries {
		k, err := cache.ParseKey(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if tc.nodes[2].srv.CacheHas(k) {
			held++
		}
	}
	if held != want {
		t.Errorf("n2 holds %d of the drained entries, want %d", held, want)
	}
}
