package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/service"
)

// Peer-protocol headers.
const (
	// HeaderForwarded marks a request already routed by a peer: the
	// receiver must serve it locally, never re-forward — one hop, no loops,
	// even when two nodes momentarily disagree on membership.
	HeaderForwarded = "X-DSServe-Forwarded"
	// HeaderNode attributes a peer request to the sending node, and every
	// response to the node that actually served it.
	HeaderNode = "X-DSServe-Node"
	// HeaderPeerToken authenticates peer traffic: forwarded requests must
	// present the shared token (when one is configured), which also stops
	// users from spoofing the forwarded flag to bypass tenant admission.
	HeaderPeerToken = "X-DSServe-Peer-Token"
	// HeaderTenant names the tenant a request is charged to; absent means
	// DefaultTenant. Forwards propagate it for attribution, but admission
	// is charged once, at the edge node the user hit.
	HeaderTenant = "X-DSServe-Tenant"
	// HeaderRingVersion piggybacks the sender's membership-hash ring version
	// on peer requests and responses, so both ends of every forward detect
	// version skew without extra round trips. Skew is counted and, combined
	// with the gossip absorbed from probes, converges the nodes' live sets
	// to their intersection.
	HeaderRingVersion = "X-DSServe-Ring-Version"
	// HeaderSweepFence carries the coordinator's live-ring version on sweep
	// sub-grid dispatches. Unlike HeaderRingVersion (observational, counted
	// only), the fence is enforced: an executor whose live view disagrees
	// rejects the dispatch with 409 instead of evaluating points against a
	// membership the coordinator no longer believes in — the guard against
	// split-brain double-execution during a partition. The coordinator
	// treats the 409 as "re-plan against my current live set", never as
	// peer death.
	HeaderSweepFence = "X-DSServe-Sweep-Fence"
)

// Options configures a cluster node.
type Options struct {
	// Self is this node's member ID; it must appear in Members.
	Self string
	// Members is the full cluster membership, including self. A single
	// entry (or empty, defaulting to just self) is a valid cluster of one.
	Members []Member
	// PeerToken is the shared secret authenticating peer traffic; empty
	// disables peer auth (single-node or trusted-network deployments).
	PeerToken string
	// Tenant is the per-tenant admission policy (zero value: disabled).
	Tenant TenantPolicy
	// StealChunk caps the points per dispatched sweep sub-grid (default
	// 16). Smaller chunks give work-stealing finer granularity; larger
	// ones amortize dispatch overhead.
	StealChunk int
	// PeerAttempts/PeerBaseDelay/PeerMaxDelay tune the retrying peer
	// clients (defaults 3 / 50ms / 1s). Attempts are deliberately fewer
	// than a user-facing client's: an unreachable peer should be declared
	// dead and healed around quickly.
	PeerAttempts  int
	PeerBaseDelay time.Duration
	PeerMaxDelay  time.Duration
	// ProbeInterval is the active failure detector's probe period; 0
	// disables probing (membership then changes only on transport evidence,
	// as before the detector existed). With probing on, demotion is
	// reversible: a restarted peer rejoins without a fleet restart.
	ProbeInterval time.Duration
	// SuspectAfter is how many consecutive probe failures confirm a suspect
	// peer dead (default 3). The first failure only marks it suspect.
	SuspectAfter int
	// RejoinAfter is how many consecutive probe successes readmit a demoted
	// peer (default 2) — hysteresis, so a flapping peer doesn't thrash the
	// ring.
	RejoinAfter int
	// DemoteCooldown suppresses transport- and gossip-cause demotions
	// within this window after a peer's readmission (default 5s; negative
	// disables), bounding ring churn: one flaky forward right after a
	// rejoin cannot flap the ring, while probe- and drain-cause demotions
	// (deliberate, evidence-backed) bypass the cooldown.
	DemoteCooldown time.Duration
	// Replicas is K in K-successor replication: on every fresh cache fill
	// the entry is pushed asynchronously to its K ring-successors (default
	// 1; negative disables). During owner loss, forwards fall through to
	// successors, converting the loss into a replica read.
	Replicas int
	// AntiEntropyInterval is the period of the background re-replication
	// scan (default 60s; negative disables): each node walks its owned
	// keys, asks the successors which they hold, and pushes the missing
	// replicas through the replication queue. Every live-ring transition
	// additionally kicks an immediate scan, so a demotion or rejoin starts
	// converging without waiting a full period.
	AntiEntropyInterval time.Duration
	// LinkFaults, when non-nil and enabled, arms seeded fault injection on
	// every outbound peer exchange (fault.LinkPlan: drops, delays,
	// duplicates, black holes, partition episodes). Chaos harnesses only.
	LinkFaults *fault.LinkPlan
	// LinkClock overrides the clock deciding partition-episode windows
	// (default time.Now; probe harnesses inject a manual clock to replay
	// even the time-windowed faults deterministically).
	LinkClock func() time.Time
	// Logger receives peer-event logs (default slog.Default).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Self == "" {
		o.Self = "solo"
	}
	if len(o.Members) == 0 {
		o.Members = []Member{{ID: o.Self, Addr: "http://127.0.0.1:0"}}
	}
	if o.StealChunk <= 0 {
		o.StealChunk = 16
	}
	if o.PeerAttempts <= 0 {
		o.PeerAttempts = 3
	}
	if o.PeerBaseDelay <= 0 {
		o.PeerBaseDelay = 50 * time.Millisecond
	}
	if o.PeerMaxDelay <= 0 {
		o.PeerMaxDelay = time.Second
	}
	if o.ProbeInterval < 0 {
		o.ProbeInterval = 0
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 3
	}
	if o.RejoinAfter <= 0 {
		o.RejoinAfter = 2
	}
	if o.DemoteCooldown == 0 {
		o.DemoteCooldown = 5 * time.Second
	} else if o.DemoteCooldown < 0 {
		o.DemoteCooldown = 0
	}
	if o.Replicas == 0 {
		o.Replicas = 1
	} else if o.Replicas < 0 {
		o.Replicas = 0
	}
	if o.AntiEntropyInterval == 0 {
		o.AntiEntropyInterval = time.Minute
	} else if o.AntiEntropyInterval < 0 {
		o.AntiEntropyInterval = 0
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Node is one member of the logical service: a service.Server wrapped with
// consistent-hash routing, peer forwarding, work-stealing sweep dispatch
// and per-tenant admission.
type Node struct {
	opts    Options
	self    Member
	srv     *service.Server
	adm     *Admission
	full    *Ring                      // configured membership, immutable
	ring    atomic.Pointer[Ring]       // live view: configured minus demoted
	clients map[string]*service.Client // peer clients by member ID (not self)
	log     *slog.Logger

	// peers is the failure detector's per-peer state (excludes self); every
	// state transition rebuilds the live ring under peersMu and swaps it
	// atomically, so readers stay lock-free.
	peersMu sync.Mutex
	peers   map[string]*peerHealth

	probeHTTP   *http.Client
	probeHeader http.Header

	// linkInj is the seeded link-fault injector (nil unless armed).
	linkInj *fault.LinkInjector

	// aeKick wakes the anti-entropy loop on live-ring transitions
	// (buffered 1: a burst of transitions coalesces into one scan).
	aeKick chan struct{}

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	// replication queue: bounded, drop-oldest (replicate.go).
	replMu      sync.Mutex
	replCond    *sync.Cond
	replQ       []replJob
	replStopped bool

	forwards   atomic.Int64 // requests forwarded to their owning peer
	steals     atomic.Int64 // sweep sub-grids executed by a non-owner node
	peerErrors atomic.Int64 // peer calls that exhausted their retries

	probes           atomic.Int64 // liveness probes sent
	probeFailures    atomic.Int64 // probes that failed (transport or identity mismatch)
	demotions        atomic.Int64 // peers demoted out of the live ring
	rejoins          atomic.Int64 // demoted peers readmitted
	ringSkews        atomic.Int64 // peer exchanges that observed a differing ring version
	unknownDemotions atomic.Int64 // demotion requests for IDs outside the membership

	replicaPushes     atomic.Int64 // cache entries pushed to a ring-successor
	replicaPushErrors atomic.Int64 // replica pushes that failed (best-effort, not peer errors)
	replicaDrops      atomic.Int64 // fills dropped from the full replication queue
	replicaHits       atomic.Int64 // non-owned keys served from the local cache
	replicaMisses     atomic.Int64 // non-owned keys served by local recompute

	handoffSentEntries atomic.Int64
	handoffSentBytes   atomic.Int64
	handoffRecvEntries atomic.Int64
	handoffRecvBytes   atomic.Int64

	ringFenceRejects atomic.Int64 // fenced sweep dispatches rejected for ring-version skew
	sweepReplans     atomic.Int64 // coordinator re-plans after a fence reject
	antiPushes       atomic.Int64 // successful replica pushes driven by anti-entropy
	antiScans        atomic.Int64 // anti-entropy scans completed
	underreplicated  atomic.Int64 // gauge: owned keys missing >=1 replica at the last scan
}

// MembershipStats snapshots the membership, replication and handoff
// counters (tests and /metrics).
type MembershipStats struct {
	Probes, ProbeFailures, Demotions, Rejoins      int64
	RingSkews, UnknownDemotions                    int64
	ReplicaPushes, ReplicaPushErrors, ReplicaDrops int64
	ReplicaHits, ReplicaMisses                     int64
	HandoffSentEntries, HandoffSentBytes           int64
	HandoffRecvEntries, HandoffRecvBytes           int64
}

// Membership returns the current membership/replication counter snapshot.
func (n *Node) Membership() MembershipStats {
	return MembershipStats{
		Probes:             n.probes.Load(),
		ProbeFailures:      n.probeFailures.Load(),
		Demotions:          n.demotions.Load(),
		Rejoins:            n.rejoins.Load(),
		RingSkews:          n.ringSkews.Load(),
		UnknownDemotions:   n.unknownDemotions.Load(),
		ReplicaPushes:      n.replicaPushes.Load(),
		ReplicaPushErrors:  n.replicaPushErrors.Load(),
		ReplicaDrops:       n.replicaDrops.Load(),
		ReplicaHits:        n.replicaHits.Load(),
		ReplicaMisses:      n.replicaMisses.Load(),
		HandoffSentEntries: n.handoffSentEntries.Load(),
		HandoffSentBytes:   n.handoffSentBytes.Load(),
		HandoffRecvEntries: n.handoffRecvEntries.Load(),
		HandoffRecvBytes:   n.handoffRecvBytes.Load(),
	}
}

// New builds the node and its underlying service.Server (whose /healthz
// and /metrics are extended with cluster state via the service hooks).
func New(opts Options, srvOpts service.Options) (*Node, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Members)
	if err != nil {
		return nil, err
	}
	self, ok := ring.Member(opts.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self ID %q is not in the membership", opts.Self)
	}

	if ring.Size() > 1 && opts.PeerToken == "" {
		// Without a token the forwarded flag is unauthenticated, and any
		// client that sets it skips per-tenant admission. Acceptable on a
		// trusted network, silent nowhere.
		opts.Logger.Warn("cluster: multi-node deployment without a peer token; clients that set "+
			HeaderForwarded+" bypass tenant admission — configure -peer-token outside trusted networks",
			"members", ring.Size())
	}

	n := &Node{
		opts:    opts,
		self:    self,
		adm:     NewAdmission(opts.Tenant),
		full:    ring,
		clients: make(map[string]*service.Client),
		peers:   make(map[string]*peerHealth),
		log:     opts.Logger,
		aeKick:  make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	n.replCond = sync.NewCond(&n.replMu)
	n.ring.Store(ring)
	hdr := http.Header{}
	hdr.Set(HeaderForwarded, "1")
	hdr.Set(HeaderNode, self.ID)
	if opts.PeerToken != "" {
		hdr.Set(HeaderPeerToken, opts.PeerToken)
	}
	n.probeHeader = hdr
	probeTimeout := opts.ProbeInterval
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	n.probeHTTP = &http.Client{Timeout: probeTimeout}
	for _, m := range ring.Members() {
		if m.ID == self.ID {
			continue
		}
		n.peers[m.ID] = &peerHealth{state: peerAlive}
		n.clients[m.ID] = &service.Client{
			Base:        m.Addr,
			MaxAttempts: opts.PeerAttempts,
			BaseDelay:   opts.PeerBaseDelay,
			MaxDelay:    opts.PeerMaxDelay,
			Header:      hdr,
		}
	}

	if opts.LinkFaults != nil && opts.LinkFaults.Enabled() && ring.Size() > 1 {
		if err := opts.LinkFaults.Check(); err != nil {
			return nil, err
		}
		clock := opts.LinkClock
		if clock == nil {
			clock = time.Now
		}
		n.linkInj = fault.NewLinkInjectorAt(*opts.LinkFaults, clock)
		lt := newLinkTransport(n, n.linkInj)
		for _, cl := range n.clients {
			cl.Transport = lt
		}
		n.probeHTTP.Transport = lt
		n.log.Warn("cluster: seeded link-fault injection armed",
			"seed", opts.LinkFaults.Seed, "partitions", len(opts.LinkFaults.Partitions))
	}

	srvOpts.HealthInfo = n.healthInfo
	srvOpts.MetricsAppend = n.metricsAppend
	srvOpts.Degraded = n.degraded
	if opts.Replicas > 0 && ring.Size() > 1 {
		srvOpts.OnCacheFill = n.onCacheFill
	}
	n.srv = service.NewServer(srvOpts)

	if ring.Size() > 1 {
		if opts.ProbeInterval > 0 {
			n.wg.Add(1)
			go n.probeLoop()
		}
		if opts.Replicas > 0 {
			n.wg.Add(1)
			go n.replicateLoop()
			if opts.AntiEntropyInterval > 0 {
				n.wg.Add(1)
				go n.antiEntropyLoop()
			}
		}
	}
	return n, nil
}

// Stop shuts down the node's background goroutines (prober, replicator)
// and waits for them. The underlying service server is not drained; call
// Server().Drain for that.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		n.replMu.Lock()
		n.replStopped = true
		n.replCond.Broadcast()
		n.replMu.Unlock()
	})
	n.wg.Wait()
}

// Server exposes the underlying service server (drain, breaker, tests).
func (n *Node) Server() *service.Server { return n.srv }

// Ring exposes the current membership view.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Admission exposes the tenant admission layer.
func (n *Node) Admission() *Admission { return n.adm }

// Counters snapshots the peer-protocol counters (forwards, steals, errors).
func (n *Node) Counters() (forwards, steals, peerErrors int64) {
	return n.forwards.Load(), n.steals.Load(), n.peerErrors.Load()
}

// LinkCounts snapshots the injected link-fault counters (zero value when
// injection is unarmed).
func (n *Node) LinkCounts() fault.LinkCounts {
	if n.linkInj == nil {
		return fault.LinkCounts{}
	}
	return n.linkInj.Counts()
}

// FenceStats snapshots the ring-fence counters: executor-side rejects and
// coordinator-side re-plans.
func (n *Node) FenceStats() (rejects, replans int64) {
	return n.ringFenceRejects.Load(), n.sweepReplans.Load()
}

// demoteCause names why a peer left the live ring; it decides whether the
// per-peer cooldown applies.
type demoteCause string

const (
	// causeTransport: a forward or sweep dispatch exhausted its retries.
	// One data point from one request — cooldown-gated.
	causeTransport demoteCause = "transport"
	// causeGossip: a probed peer reported the member not-alive. Secondhand
	// evidence — cooldown-gated.
	causeGossip demoteCause = "gossip"
	// causeProbe: SuspectAfter consecutive probe failures. Deliberate,
	// evidence-backed — bypasses the cooldown.
	causeProbe demoteCause = "probe"
	// causeDrain: the peer announced its own departure. Authoritative —
	// bypasses the cooldown.
	causeDrain demoteCause = "drain"
)

// MarkDead demotes a member out of this node's live ring (no-op for self,
// the last member, or an ID outside the configured membership). The ring
// version changes, keys owned by the demoted node reassign to the
// survivors, and in-flight sweeps re-dispatch its sub-grids — the
// cluster-scope analogue of PC ownership reclamation. Unlike its pre-probe
// ancestor, the demotion is reversible: the failure detector readmits the
// peer after RejoinAfter consecutive successful probes.
func (n *Node) MarkDead(id string) {
	n.demote(id, causeTransport)
}

// demote moves a peer to the demoted state and rebuilds the live ring.
// Unknown IDs are a counted no-op — a stale gossip payload or a caller bug
// must not CAS-loop or grow state. Transport- and gossip-cause demotions
// within DemoteCooldown of the peer's last readmission are suppressed,
// bounding ring churn; the prober escalates through suspect with its own
// consecutive-failure evidence if the peer is genuinely down again.
func (n *Node) demote(id string, cause demoteCause) {
	if id == n.self.ID {
		return
	}
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	ph, ok := n.peers[id]
	if !ok {
		n.unknownDemotions.Add(1)
		n.log.Warn("cluster: demotion request for unknown member ignored", "peer", id, "cause", string(cause))
		return
	}
	if ph.state == peerDemoted {
		return
	}
	now := time.Now()
	if (cause == causeTransport || cause == causeGossip) &&
		!ph.lastReadmit.IsZero() && now.Sub(ph.lastReadmit) < n.opts.DemoteCooldown {
		n.log.Debug("cluster: demotion suppressed by readmit cooldown", "peer", id, "cause", string(cause))
		return
	}
	ph.state = peerDemoted
	ph.failures, ph.successes = 0, 0
	ph.lastChange = now
	n.demotions.Add(1)
	n.rebuildRingLocked()
	live := n.ring.Load()
	n.log.Warn("cluster: peer demoted", "peer", id, "cause", string(cause),
		"ringVersion", live.Version(), "members", live.Size())
}

// readmitLocked returns a demoted peer to the live ring (peersMu held).
func (n *Node) readmitLocked(id string, ph *peerHealth) {
	now := time.Now()
	ph.state = peerAlive
	ph.failures, ph.successes = 0, 0
	ph.lastChange, ph.lastReadmit = now, now
	n.rejoins.Add(1)
	n.rebuildRingLocked()
	live := n.ring.Load()
	n.log.Info("cluster: peer rejoined", "peer", id,
		"ringVersion", live.Version(), "members", live.Size())
}

// rebuildRingLocked recomputes the live ring — the configured membership
// minus demoted peers, self always included — and swaps it atomically
// (peersMu held). Ownership is a pure function of the live set, so any two
// nodes that agree on liveness agree on ownership.
func (n *Node) rebuildRingLocked() {
	alive := make([]Member, 0, n.full.Size())
	for _, m := range n.full.Members() {
		if m.ID == n.self.ID || n.peers[m.ID].state != peerDemoted {
			alive = append(alive, m)
		}
	}
	r, err := NewRing(alive)
	if err != nil {
		// Unreachable: the set always contains self.
		n.log.Error("cluster: live ring rebuild failed", "err", err)
		return
	}
	n.ring.Store(r)
	// Every transition changes successor sets somewhere: wake the
	// anti-entropy loop so under-replicated keys start converging now
	// rather than at the next periodic scan. Non-blocking: a burst of
	// transitions coalesces into one pending kick.
	select {
	case n.aeKick <- struct{}{}:
	default:
	}
}

// degraded reports the node unhealthy when more than half of its
// configured peers are demoted: a minority partition keeps serving reads
// it can, but tells load balancers to prefer the majority side.
func (n *Node) degraded() (bool, string) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if len(n.peers) == 0 {
		return false, ""
	}
	demoted := 0
	for _, ph := range n.peers {
		if ph.state == peerDemoted {
			demoted++
		}
	}
	if demoted*2 > len(n.peers) {
		return true, fmt.Sprintf("%d of %d peers demoted", demoted, len(n.peers))
	}
	return false, ""
}

// PeerState reports the failure detector's state for a member ("self",
// "alive", "suspect", "demoted", or "" for unknown IDs).
func (n *Node) PeerState(id string) string {
	if id == n.self.ID {
		return "self"
	}
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	ph, ok := n.peers[id]
	if !ok {
		return ""
	}
	return ph.state.String()
}

// Handler wraps the service handler with the peer middleware.
func (n *Node) Handler() http.Handler {
	return n.middleware(n.srv.Handler())
}

// maxBody mirrors the service's request cap; the router reads the body to
// compute the canon key, then replays it into the inner handler.
const maxBody = 1 << 20

func (n *Node) middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		forwarded := r.Header.Get(HeaderForwarded) != ""
		if forwarded && n.opts.PeerToken != "" && r.Header.Get(HeaderPeerToken) != n.opts.PeerToken {
			n.writeError(w, http.StatusForbidden, fmt.Errorf("cluster: invalid peer token"))
			return
		}
		if forwarded {
			// Piggybacked ring-version exchange: compare the sender's view,
			// and stamp ours on the response for the sender to compare.
			if v := r.Header.Get(HeaderRingVersion); v != "" && v != n.ring.Load().Version() {
				n.ringSkews.Add(1)
			}
			w.Header().Set(HeaderRingVersion, n.ring.Load().Version())
		}
		if forwarded && r.URL.Path == "/sweep" {
			// Ring-version fence: a sub-grid dispatch carrying a fence from
			// a coordinator whose live view disagrees with ours must not be
			// evaluated against the stale plan — reject retryably and let
			// the coordinator re-plan once the views converge.
			if fence := r.Header.Get(HeaderSweepFence); fence != "" {
				if live := n.ring.Load().Version(); fence != live {
					n.ringFenceRejects.Add(1)
					n.writeError(w, http.StatusConflict,
						fmt.Errorf("cluster: ring version skew: dispatch fenced at %s, executor live at %s", fence, live))
					return
				}
			}
		}
		if strings.HasPrefix(r.URL.Path, "/internal/") {
			// Peer-internal endpoints: authenticated peer traffic only (the
			// token check above already ran for forwarded requests), and no
			// admission — cache transfer must work while a tenant is shed.
			if !forwarded {
				n.writeError(w, http.StatusForbidden,
					fmt.Errorf("cluster: %s is peer-internal", r.URL.Path))
				return
			}
			switch r.URL.Path {
			case "/internal/handoff":
				n.handleHandoff(w, r)
			case "/internal/departing":
				n.handleDeparting(w, r)
			case "/internal/has":
				n.handleHas(w, r)
			default:
				n.writeError(w, http.StatusNotFound,
					fmt.Errorf("cluster: unknown peer-internal endpoint %s", r.URL.Path))
			}
			return
		}
		if r.Method != http.MethodPost {
			// GET /healthz and /metrics answer locally on every node and
			// bypass admission: monitoring must work while shedding.
			w.Header().Set(HeaderNode, n.self.ID)
			inner.ServeHTTP(w, r)
			return
		}

		// Per-tenant admission, charged once at the edge: forwarded peer
		// traffic was already admitted by the node the user actually hit.
		if !forwarded {
			release, retryAfter, ok := n.adm.Admit(r.Header.Get(HeaderTenant))
			if !ok {
				w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
				n.writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("cluster: tenant over admission limits; retry later"))
				return
			}
			defer release()
		}

		switch {
		case !forwarded && r.URL.Path == "/sweep":
			n.coordinateSweep(w, r, inner)
		case !forwarded && (r.URL.Path == "/run" || r.URL.Path == "/verify" || r.URL.Path == "/compile"):
			n.routeOrServe(w, r, inner)
		default:
			w.Header().Set(HeaderNode, n.self.ID)
			inner.ServeHTTP(w, r)
		}
	})
}

// routeOrServe computes the request's canonical content address and serves
// it locally when this node owns it, otherwise forwards it to the owner.
// Requests whose key cannot be computed (malformed JSON, unknown workload)
// fall through to the local handler, which owns the error vocabulary.
//
// When a forward fails, the failed peer is demoted and the loop re-reads
// the live ring, so the next iteration targets the key's successor — the
// replica holder, by construction of K-successor replication. Owner loss
// thus degrades to a replica read before it degrades to a recompute.
func (n *Node) routeOrServe(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read request: %w", err))
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	key, ok := requestKey(r.URL.Path, body)
	if !ok {
		n.serveLocal(w, r, inner)
		return
	}
	for attempt := 0; attempt <= n.opts.Replicas; attempt++ {
		owner := n.ring.Load().Owner(key)
		if owner.ID == n.self.ID {
			n.serveKeyed(w, r, inner, key, body)
			return
		}
		if done := n.forward(w, r, owner, body); done {
			return
		}
	}
	// Every routable peer is unreachable: this node — a survivor — serves
	// the request itself. Determinism makes that safe: any node computes
	// the same bytes.
	n.serveKeyed(w, r, inner, key, body)
}

func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	w.Header().Set(HeaderNode, n.self.ID)
	inner.ServeHTTP(w, r)
}

// serveKeyed serves a keyed request locally, with replica accounting: when
// the key's configured (full-membership) owner is some other node, this
// node is standing in for it — a local cache entry then is a replica hit
// (handoff or replication paid off), a miss means recompute. The counters
// measure exactly what replication is for.
func (n *Node) serveKeyed(w http.ResponseWriter, r *http.Request, inner http.Handler, key cache.Key, body []byte) {
	if n.full.Owner(key).ID != n.self.ID {
		if n.srv.CacheHas(key) {
			n.replicaHits.Add(1)
		} else {
			n.replicaMisses.Add(1)
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	n.serveLocal(w, r, inner)
}

// requestKey computes the canonical content address for a routable POST
// body. ok=false means the body does not decode into a keyable request —
// the local handler will produce the authoritative error.
func requestKey(path string, body []byte) (cache.Key, bool) {
	switch path {
	case "/run":
		var req service.RunRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return cache.Key{}, false
		}
		k, err := service.RunKey(req)
		return k, err == nil
	case "/verify":
		var req service.VerifyRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return cache.Key{}, false
		}
		k, err := service.VerifyKey(req)
		return k, err == nil
	case "/compile":
		var req service.CompileRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return cache.Key{}, false
		}
		k, err := service.CompileRequestKey(req)
		return k, err == nil
	}
	return cache.Key{}, false
}

// strictUnmarshal mirrors the service's strict decoding so the router and
// the handler agree on what constitutes a well-formed request.
func strictUnmarshal(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// statusClientClosedRequest is the nginx-conventional status for "the
// caller went away before an answer existed" — not an RFC code, but the
// widely understood vocabulary for it in proxy logs.
const statusClientClosedRequest = 499

// forward relays the request to its owning peer and the peer's answer —
// whatever it is, a 200 as much as a 429 with Retry-After — back to the
// caller. It reports false when the peer is unreachable after retries, in
// which case the peer is marked dead and the caller serves locally.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner Member, body []byte) bool {
	cl := n.clients[owner.ID]
	if cl == nil {
		return false
	}
	fwd := *cl
	fwd.Header = fwd.Header.Clone()
	fwd.Header.Set(HeaderRingVersion, n.ring.Load().Version())
	if tenant := r.Header.Get(HeaderTenant); tenant != "" {
		fwd.Header.Set(HeaderTenant, tenant)
	}
	status, respBody, respHdr, err := fwd.PostRaw(r.Context(), r.URL.Path, body)
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			// The caller ended the request (disconnect or client-side
			// deadline) mid-forward: that says nothing about the peer's
			// health, so it must not be marked dead — one impatient client
			// must never shrink the ring. Same guard the sweep dispatch
			// path applies before its MarkDead.
			n.writeError(w, statusClientClosedRequest,
				fmt.Errorf("cluster: request canceled while forwarding to %s: %w", owner.ID, ctxErr))
			return true
		}
		n.peerErrors.Add(1)
		n.log.Warn("cluster: forward failed; serving locally", "peer", owner.ID, "path", r.URL.Path, "err", err)
		n.MarkDead(owner.ID)
		return false
	}
	n.forwards.Add(1)
	if v := respHdr.Get(HeaderRingVersion); v != "" && v != n.ring.Load().Version() {
		n.ringSkews.Add(1)
	}
	for _, h := range []string{"Content-Type", "Retry-After", HeaderNode} {
		if v := respHdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(status)
	w.Write(respBody)
	return true
}

// ---- observability ----

// healthInfo feeds the cluster view into GET /healthz: ring identity plus
// the failure detector's per-peer state. Peers read this from each other's
// probes ("gossip"): the listed states and ring version are what lets a
// probed node's view propagate without a separate gossip protocol.
func (n *Node) healthInfo() map[string]any {
	ring := n.ring.Load()
	n.peersMu.Lock()
	peers := make([]map[string]any, 0, n.full.Size())
	for _, m := range n.full.Members() {
		state := "self"
		if ph, ok := n.peers[m.ID]; ok {
			state = ph.state.String()
		}
		peers = append(peers, map[string]any{
			"id":    m.ID,
			"addr":  m.Addr,
			"state": state,
			// alive is the pre-detector vocabulary: present in the live ring.
			"alive": state != "demoted",
		})
	}
	n.peersMu.Unlock()
	return map[string]any{
		"node":        n.self.ID,
		"ringVersion": ring.Version(),
		"ringMembers": ring.Size(),
		"peers":       peers,
	}
}

// metricsAppend feeds the peer-protocol counters into GET /metrics.
func (n *Node) metricsAppend(w io.Writer) {
	fmt.Fprintf(w, "# HELP dsserve_peer_forwards_total Requests forwarded to their owning peer node.\n# TYPE dsserve_peer_forwards_total counter\ndsserve_peer_forwards_total %d\n", n.forwards.Load())
	fmt.Fprintf(w, "# HELP dsserve_steals_total Sweep sub-grids executed by a node that does not own them.\n# TYPE dsserve_steals_total counter\ndsserve_steals_total %d\n", n.steals.Load())
	fmt.Fprintf(w, "# HELP dsserve_peer_errors_total Peer calls that exhausted their retries (node-loss signals).\n# TYPE dsserve_peer_errors_total counter\ndsserve_peer_errors_total %d\n", n.peerErrors.Load())
	fmt.Fprintf(w, "# HELP dsserve_ring_members Live members in this node's ring view.\n# TYPE dsserve_ring_members gauge\ndsserve_ring_members %d\n", n.ring.Load().Size())
	ms := n.Membership()
	deg := 0
	if d, _ := n.degraded(); d {
		deg = 1
	}
	fmt.Fprintf(w, "# HELP dsserve_probes_total Liveness probes sent to peers.\n# TYPE dsserve_probes_total counter\ndsserve_probes_total %d\n", ms.Probes)
	fmt.Fprintf(w, "# HELP dsserve_probe_failures_total Probes that failed (transport error or identity mismatch).\n# TYPE dsserve_probe_failures_total counter\ndsserve_probe_failures_total %d\n", ms.ProbeFailures)
	fmt.Fprintf(w, "# HELP dsserve_demotions_total Peers demoted out of the live ring.\n# TYPE dsserve_demotions_total counter\ndsserve_demotions_total %d\n", ms.Demotions)
	fmt.Fprintf(w, "# HELP dsserve_rejoins_total Demoted peers readmitted to the live ring.\n# TYPE dsserve_rejoins_total counter\ndsserve_rejoins_total %d\n", ms.Rejoins)
	fmt.Fprintf(w, "# HELP dsserve_ring_skew_total Peer exchanges that observed a differing ring version.\n# TYPE dsserve_ring_skew_total counter\ndsserve_ring_skew_total %d\n", ms.RingSkews)
	fmt.Fprintf(w, "# HELP dsserve_unknown_demotions_total Demotion requests for IDs outside the configured membership (ignored).\n# TYPE dsserve_unknown_demotions_total counter\ndsserve_unknown_demotions_total %d\n", ms.UnknownDemotions)
	fmt.Fprintf(w, "# HELP dsserve_degraded Whether more than half of the configured peers are demoted.\n# TYPE dsserve_degraded gauge\ndsserve_degraded %d\n", deg)
	fmt.Fprintf(w, "# HELP dsserve_replica_pushes_total Cache entries pushed to ring-successors.\n# TYPE dsserve_replica_pushes_total counter\ndsserve_replica_pushes_total %d\n", ms.ReplicaPushes)
	fmt.Fprintf(w, "# HELP dsserve_replica_push_errors_total Replica pushes that failed (best-effort).\n# TYPE dsserve_replica_push_errors_total counter\ndsserve_replica_push_errors_total %d\n", ms.ReplicaPushErrors)
	fmt.Fprintf(w, "# HELP dsserve_replica_dropped_total Cache fills dropped from the full replication queue.\n# TYPE dsserve_replica_dropped_total counter\ndsserve_replica_dropped_total %d\n", ms.ReplicaDrops)
	fmt.Fprintf(w, "# HELP dsserve_replica_hits_total Non-owned keys served from the local cache (replication or handoff paid off).\n# TYPE dsserve_replica_hits_total counter\ndsserve_replica_hits_total %d\n", ms.ReplicaHits)
	fmt.Fprintf(w, "# HELP dsserve_replica_misses_total Non-owned keys served by local recompute.\n# TYPE dsserve_replica_misses_total counter\ndsserve_replica_misses_total %d\n", ms.ReplicaMisses)
	fmt.Fprintf(w, "# HELP dsserve_handoff_entries_sent_total Cache entries handed off to new owners during drain.\n# TYPE dsserve_handoff_entries_sent_total counter\ndsserve_handoff_entries_sent_total %d\n", ms.HandoffSentEntries)
	fmt.Fprintf(w, "# HELP dsserve_handoff_bytes_sent_total Cache bytes handed off during drain.\n# TYPE dsserve_handoff_bytes_sent_total counter\ndsserve_handoff_bytes_sent_total %d\n", ms.HandoffSentBytes)
	fmt.Fprintf(w, "# HELP dsserve_handoff_entries_received_total Cache entries imported from peers (drain handoff or replication).\n# TYPE dsserve_handoff_entries_received_total counter\ndsserve_handoff_entries_received_total %d\n", ms.HandoffRecvEntries)
	fmt.Fprintf(w, "# HELP dsserve_handoff_bytes_received_total Cache bytes imported from peers.\n# TYPE dsserve_handoff_bytes_received_total counter\ndsserve_handoff_bytes_received_total %d\n", ms.HandoffRecvBytes)
	fmt.Fprintf(w, "# HELP dsserve_underreplicated_keys Owned keys missing at least one successor replica at the last anti-entropy scan.\n# TYPE dsserve_underreplicated_keys gauge\ndsserve_underreplicated_keys %d\n", n.underreplicated.Load())
	fmt.Fprintf(w, "# HELP dsserve_antientropy_pushes_total Replica pushes driven by the anti-entropy scan (subset of dsserve_replica_pushes_total).\n# TYPE dsserve_antientropy_pushes_total counter\ndsserve_antientropy_pushes_total %d\n", n.antiPushes.Load())
	fmt.Fprintf(w, "# HELP dsserve_ring_fence_rejects_total Sweep sub-grid dispatches rejected because the coordinator's ring fence disagreed with this executor's live view.\n# TYPE dsserve_ring_fence_rejects_total counter\ndsserve_ring_fence_rejects_total %d\n", n.ringFenceRejects.Load())
	lc := fault.LinkCounts{}
	if n.linkInj != nil {
		lc = n.linkInj.Counts()
	}
	fmt.Fprintf(w, "# HELP dsserve_link_faults_injected_total Seeded faults injected into outbound peer exchanges, by kind (all zero unless -link-fault is armed).\n# TYPE dsserve_link_faults_injected_total counter\n")
	fmt.Fprintf(w, "dsserve_link_faults_injected_total{kind=\"drop\"} %d\n", lc.Drops)
	fmt.Fprintf(w, "dsserve_link_faults_injected_total{kind=\"delay\"} %d\n", lc.Delays)
	fmt.Fprintf(w, "dsserve_link_faults_injected_total{kind=\"dup\"} %d\n", lc.Dups)
	fmt.Fprintf(w, "dsserve_link_faults_injected_total{kind=\"blackhole\"} %d\n", lc.BlackHoled)
	fmt.Fprintf(w, "dsserve_link_faults_injected_total{kind=\"partition\"} %d\n", lc.Partition)
	sheds := n.adm.Sheds()
	if len(sheds) > 0 {
		fmt.Fprintf(w, "# HELP dsserve_tenant_shed_total Requests shed by per-tenant admission (429s), by tenant.\n# TYPE dsserve_tenant_shed_total counter\n")
		for _, s := range sheds {
			fmt.Fprintf(w, "dsserve_tenant_shed_total{tenant=%q} %d\n", s.Tenant, s.Shed)
		}
	}
}

// writeJSON renders a 200 JSON response for the cluster-owned endpoints.
func (n *Node) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderNode, n.self.ID)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		n.log.Error("cluster: encode response", "err", err)
	}
}

// writeError mirrors the service's JSON error rendering.
func (n *Node) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderNode, n.self.ID)
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Error string `json:"error"`
	}{Error: service.OneLine(err)})
}
