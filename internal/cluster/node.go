package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/service"
)

// Peer-protocol headers.
const (
	// HeaderForwarded marks a request already routed by a peer: the
	// receiver must serve it locally, never re-forward — one hop, no loops,
	// even when two nodes momentarily disagree on membership.
	HeaderForwarded = "X-DSServe-Forwarded"
	// HeaderNode attributes a peer request to the sending node, and every
	// response to the node that actually served it.
	HeaderNode = "X-DSServe-Node"
	// HeaderPeerToken authenticates peer traffic: forwarded requests must
	// present the shared token (when one is configured), which also stops
	// users from spoofing the forwarded flag to bypass tenant admission.
	HeaderPeerToken = "X-DSServe-Peer-Token"
	// HeaderTenant names the tenant a request is charged to; absent means
	// DefaultTenant. Forwards propagate it for attribution, but admission
	// is charged once, at the edge node the user hit.
	HeaderTenant = "X-DSServe-Tenant"
)

// Options configures a cluster node.
type Options struct {
	// Self is this node's member ID; it must appear in Members.
	Self string
	// Members is the full cluster membership, including self. A single
	// entry (or empty, defaulting to just self) is a valid cluster of one.
	Members []Member
	// PeerToken is the shared secret authenticating peer traffic; empty
	// disables peer auth (single-node or trusted-network deployments).
	PeerToken string
	// Tenant is the per-tenant admission policy (zero value: disabled).
	Tenant TenantPolicy
	// StealChunk caps the points per dispatched sweep sub-grid (default
	// 16). Smaller chunks give work-stealing finer granularity; larger
	// ones amortize dispatch overhead.
	StealChunk int
	// PeerAttempts/PeerBaseDelay/PeerMaxDelay tune the retrying peer
	// clients (defaults 3 / 50ms / 1s). Attempts are deliberately fewer
	// than a user-facing client's: an unreachable peer should be declared
	// dead and healed around quickly.
	PeerAttempts  int
	PeerBaseDelay time.Duration
	PeerMaxDelay  time.Duration
	// Logger receives peer-event logs (default slog.Default).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Self == "" {
		o.Self = "solo"
	}
	if len(o.Members) == 0 {
		o.Members = []Member{{ID: o.Self, Addr: "http://127.0.0.1:0"}}
	}
	if o.StealChunk <= 0 {
		o.StealChunk = 16
	}
	if o.PeerAttempts <= 0 {
		o.PeerAttempts = 3
	}
	if o.PeerBaseDelay <= 0 {
		o.PeerBaseDelay = 50 * time.Millisecond
	}
	if o.PeerMaxDelay <= 0 {
		o.PeerMaxDelay = time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Node is one member of the logical service: a service.Server wrapped with
// consistent-hash routing, peer forwarding, work-stealing sweep dispatch
// and per-tenant admission.
type Node struct {
	opts    Options
	self    Member
	srv     *service.Server
	adm     *Admission
	ring    atomic.Pointer[Ring]
	clients map[string]*service.Client // peer clients by member ID (not self)
	log     *slog.Logger

	forwards   atomic.Int64 // requests forwarded to their owning peer
	steals     atomic.Int64 // sweep sub-grids executed by a non-owner node
	peerErrors atomic.Int64 // peer calls that exhausted their retries
}

// New builds the node and its underlying service.Server (whose /healthz
// and /metrics are extended with cluster state via the service hooks).
func New(opts Options, srvOpts service.Options) (*Node, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Members)
	if err != nil {
		return nil, err
	}
	self, ok := ring.Member(opts.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self ID %q is not in the membership", opts.Self)
	}

	if ring.Size() > 1 && opts.PeerToken == "" {
		// Without a token the forwarded flag is unauthenticated, and any
		// client that sets it skips per-tenant admission. Acceptable on a
		// trusted network, silent nowhere.
		opts.Logger.Warn("cluster: multi-node deployment without a peer token; clients that set "+
			HeaderForwarded+" bypass tenant admission — configure -peer-token outside trusted networks",
			"members", ring.Size())
	}

	n := &Node{
		opts:    opts,
		self:    self,
		adm:     NewAdmission(opts.Tenant),
		clients: make(map[string]*service.Client),
		log:     opts.Logger,
	}
	n.ring.Store(ring)
	for _, m := range ring.Members() {
		if m.ID == self.ID {
			continue
		}
		hdr := http.Header{}
		hdr.Set(HeaderForwarded, "1")
		hdr.Set(HeaderNode, self.ID)
		if opts.PeerToken != "" {
			hdr.Set(HeaderPeerToken, opts.PeerToken)
		}
		n.clients[m.ID] = &service.Client{
			Base:        m.Addr,
			MaxAttempts: opts.PeerAttempts,
			BaseDelay:   opts.PeerBaseDelay,
			MaxDelay:    opts.PeerMaxDelay,
			Header:      hdr,
		}
	}

	srvOpts.HealthInfo = n.healthInfo
	srvOpts.MetricsAppend = n.metricsAppend
	n.srv = service.NewServer(srvOpts)
	return n, nil
}

// Server exposes the underlying service server (drain, breaker, tests).
func (n *Node) Server() *service.Server { return n.srv }

// Ring exposes the current membership view.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Admission exposes the tenant admission layer.
func (n *Node) Admission() *Admission { return n.adm }

// Counters snapshots the peer-protocol counters (forwards, steals, errors).
func (n *Node) Counters() (forwards, steals, peerErrors int64) {
	return n.forwards.Load(), n.steals.Load(), n.peerErrors.Load()
}

// MarkDead removes a member from this node's view of the ring (no-op for
// self or the last member). The ring version changes, keys owned by the
// dead node reassign to the survivors, and in-flight sweeps re-dispatch
// its sub-grids — the cluster-scope analogue of PC ownership reclamation.
func (n *Node) MarkDead(id string) {
	if id == n.self.ID {
		return
	}
	for {
		cur := n.ring.Load()
		if !cur.Has(id) {
			return
		}
		next, err := cur.Without(id)
		if err != nil {
			return
		}
		if n.ring.CompareAndSwap(cur, next) {
			n.log.Warn("cluster: peer marked dead", "peer", id, "ringVersion", next.Version(), "members", next.Size())
			return
		}
	}
}

// Handler wraps the service handler with the peer middleware.
func (n *Node) Handler() http.Handler {
	return n.middleware(n.srv.Handler())
}

// maxBody mirrors the service's request cap; the router reads the body to
// compute the canon key, then replays it into the inner handler.
const maxBody = 1 << 20

func (n *Node) middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		forwarded := r.Header.Get(HeaderForwarded) != ""
		if forwarded && n.opts.PeerToken != "" && r.Header.Get(HeaderPeerToken) != n.opts.PeerToken {
			n.writeError(w, http.StatusForbidden, fmt.Errorf("cluster: invalid peer token"))
			return
		}
		if r.Method != http.MethodPost {
			// GET /healthz and /metrics answer locally on every node and
			// bypass admission: monitoring must work while shedding.
			w.Header().Set(HeaderNode, n.self.ID)
			inner.ServeHTTP(w, r)
			return
		}

		// Per-tenant admission, charged once at the edge: forwarded peer
		// traffic was already admitted by the node the user actually hit.
		if !forwarded {
			release, retryAfter, ok := n.adm.Admit(r.Header.Get(HeaderTenant))
			if !ok {
				w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
				n.writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("cluster: tenant over admission limits; retry later"))
				return
			}
			defer release()
		}

		switch {
		case !forwarded && r.URL.Path == "/sweep":
			n.coordinateSweep(w, r, inner)
		case !forwarded && (r.URL.Path == "/run" || r.URL.Path == "/verify" || r.URL.Path == "/compile"):
			n.routeOrServe(w, r, inner)
		default:
			w.Header().Set(HeaderNode, n.self.ID)
			inner.ServeHTTP(w, r)
		}
	})
}

// routeOrServe computes the request's canonical content address and serves
// it locally when this node owns it, otherwise forwards it to the owner.
// Requests whose key cannot be computed (malformed JSON, unknown workload)
// fall through to the local handler, which owns the error vocabulary.
func (n *Node) routeOrServe(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read request: %w", err))
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	key, ok := requestKey(r.URL.Path, body)
	if !ok {
		n.serveLocal(w, r, inner)
		return
	}
	owner := n.ring.Load().Owner(key)
	if owner.ID == n.self.ID {
		n.serveLocal(w, r, inner)
		return
	}
	if done := n.forward(w, r, owner, body); done {
		return
	}
	// The owner is unreachable: it has been removed from the ring and this
	// node — a survivor the key may now map to — serves the request itself.
	// Determinism makes that safe: any node computes the same bytes.
	r.Body = io.NopCloser(bytes.NewReader(body))
	n.serveLocal(w, r, inner)
}

func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	w.Header().Set(HeaderNode, n.self.ID)
	inner.ServeHTTP(w, r)
}

// requestKey computes the canonical content address for a routable POST
// body. ok=false means the body does not decode into a keyable request —
// the local handler will produce the authoritative error.
func requestKey(path string, body []byte) (cache.Key, bool) {
	switch path {
	case "/run":
		var req service.RunRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return cache.Key{}, false
		}
		k, err := service.RunKey(req)
		return k, err == nil
	case "/verify":
		var req service.VerifyRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return cache.Key{}, false
		}
		k, err := service.VerifyKey(req)
		return k, err == nil
	case "/compile":
		var req service.CompileRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return cache.Key{}, false
		}
		k, err := service.CompileRequestKey(req)
		return k, err == nil
	}
	return cache.Key{}, false
}

// strictUnmarshal mirrors the service's strict decoding so the router and
// the handler agree on what constitutes a well-formed request.
func strictUnmarshal(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// statusClientClosedRequest is the nginx-conventional status for "the
// caller went away before an answer existed" — not an RFC code, but the
// widely understood vocabulary for it in proxy logs.
const statusClientClosedRequest = 499

// forward relays the request to its owning peer and the peer's answer —
// whatever it is, a 200 as much as a 429 with Retry-After — back to the
// caller. It reports false when the peer is unreachable after retries, in
// which case the peer is marked dead and the caller serves locally.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner Member, body []byte) bool {
	cl := n.clients[owner.ID]
	if cl == nil {
		return false
	}
	fwd := *cl
	if tenant := r.Header.Get(HeaderTenant); tenant != "" {
		fwd.Header = fwd.Header.Clone()
		fwd.Header.Set(HeaderTenant, tenant)
	}
	status, respBody, respHdr, err := fwd.PostRaw(r.Context(), r.URL.Path, body)
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			// The caller ended the request (disconnect or client-side
			// deadline) mid-forward: that says nothing about the peer's
			// health, so it must not be marked dead — one impatient client
			// must never shrink the ring. Same guard the sweep dispatch
			// path applies before its MarkDead.
			n.writeError(w, statusClientClosedRequest,
				fmt.Errorf("cluster: request canceled while forwarding to %s: %w", owner.ID, ctxErr))
			return true
		}
		n.peerErrors.Add(1)
		n.log.Warn("cluster: forward failed; serving locally", "peer", owner.ID, "path", r.URL.Path, "err", err)
		n.MarkDead(owner.ID)
		return false
	}
	n.forwards.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After", HeaderNode} {
		if v := respHdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(status)
	w.Write(respBody)
	return true
}

// ---- observability ----

// healthInfo feeds the cluster view into GET /healthz.
func (n *Node) healthInfo() map[string]any {
	ring := n.ring.Load()
	peers := make([]map[string]any, 0, len(n.opts.Members))
	for _, m := range n.opts.Members {
		peers = append(peers, map[string]any{
			"id":    m.ID,
			"addr":  m.Addr,
			"alive": ring.Has(m.ID),
		})
	}
	return map[string]any{
		"node":        n.self.ID,
		"ringVersion": ring.Version(),
		"ringMembers": ring.Size(),
		"peers":       peers,
	}
}

// metricsAppend feeds the peer-protocol counters into GET /metrics.
func (n *Node) metricsAppend(w io.Writer) {
	fmt.Fprintf(w, "# HELP dsserve_peer_forwards_total Requests forwarded to their owning peer node.\n# TYPE dsserve_peer_forwards_total counter\ndsserve_peer_forwards_total %d\n", n.forwards.Load())
	fmt.Fprintf(w, "# HELP dsserve_steals_total Sweep sub-grids executed by a node that does not own them.\n# TYPE dsserve_steals_total counter\ndsserve_steals_total %d\n", n.steals.Load())
	fmt.Fprintf(w, "# HELP dsserve_peer_errors_total Peer calls that exhausted their retries (node-loss signals).\n# TYPE dsserve_peer_errors_total counter\ndsserve_peer_errors_total %d\n", n.peerErrors.Load())
	fmt.Fprintf(w, "# HELP dsserve_ring_members Live members in this node's ring view.\n# TYPE dsserve_ring_members gauge\ndsserve_ring_members %d\n", n.ring.Load().Size())
	sheds := n.adm.Sheds()
	if len(sheds) > 0 {
		fmt.Fprintf(w, "# HELP dsserve_tenant_shed_total Requests shed by per-tenant admission (429s), by tenant.\n# TYPE dsserve_tenant_shed_total counter\n")
		for _, s := range sheds {
			fmt.Fprintf(w, "dsserve_tenant_shed_total{tenant=%q} %d\n", s.Tenant, s.Shed)
		}
	}
}

// writeError mirrors the service's JSON error rendering.
func (n *Node) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderNode, n.self.ID)
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Error string `json:"error"`
	}{Error: service.OneLine(err)})
}
