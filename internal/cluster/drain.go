package cluster

// Graceful drain with warm cache handoff.
//
// A planned restart used to cost the cluster the departing node's entire
// content-addressed cache: its keys would reassign to the survivors, every
// one of them a cold miss to resimulate. DrainHandoff converts that into a
// transfer. On SIGTERM the node (1) announces its departure so peers
// demote it immediately — drain-cause, bypassing the readmit cooldown —
// instead of discovering the death one failed forward at a time, then
// (2) streams its cache, grouped by each entry's next owner on the ring
// without itself, in bounded batches over the authenticated
// /internal/handoff endpoint.
//
// The transfer is best-effort under the caller's deadline and resumable in
// the only sense that matters for a cache: a failed batch is skipped, not
// retried to death, because every entry is recomputable — the handoff
// moves cache provenance, never correctness. Entries ship hottest-first
// (ExportCache walks the LRU from the front), so an expiring deadline
// keeps the most valuable part of the cache warm.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/service"
)

// handoffBatch caps the entries per /internal/handoff call, bounding the
// receiver's body size and the blast radius of one failed batch.
const handoffBatch = 64

// maxHandoffBody caps the /internal/handoff request body. Entries are
// simulation summaries (a few KB each), so 64 of them sit far below this;
// the cap is a backstop against a misbehaving peer, not a working limit.
const maxHandoffBody = 8 << 20

// HandoffRequest is one batch of cache entries moving between peers —
// shared by the drain handoff (Reason "drain") and K-successor replication
// (Reason "replicate").
type HandoffRequest struct {
	From    string               `json:"from"`
	Reason  string               `json:"reason"`
	Entries []service.CacheEntry `json:"entries"`
}

type handoffResponse struct {
	Imported int `json:"imported"`
}

type departingRequest struct {
	Node string `json:"node"`
}

// HandoffReport summarizes one drain handoff.
type HandoffReport struct {
	Peers         int   `json:"peers"`         // distinct receiving owners
	Entries       int   `json:"entries"`       // entries delivered
	Bytes         int64 `json:"bytes"`         // entry body bytes delivered
	Batches       int   `json:"batches"`       // batches delivered
	FailedBatches int   `json:"failedBatches"` // batches lost (skipped, not fatal)
}

// DrainHandoff announces this node's departure and streams its cache to
// the entries' next owners. Call it after the HTTP listener stops
// accepting new work and before the worker pool drains; ctx bounds the
// whole transfer.
func (n *Node) DrainHandoff(ctx context.Context) HandoffReport {
	var rep HandoffReport
	live := n.ring.Load()
	if live.Size() <= 1 || !live.Has(n.self.ID) {
		return rep
	}
	rest, err := live.Without(n.self.ID)
	if err != nil {
		return rep
	}

	for _, m := range rest.Members() {
		if cl := n.clients[m.ID]; cl != nil {
			if err := cl.PostJSON(ctx, "/internal/departing", departingRequest{Node: n.self.ID}, nil); err != nil {
				n.log.Warn("cluster: departure announcement failed", "peer", m.ID, "err", err)
			}
		}
	}

	// Entries group by their next owner on the ring without self, and the
	// grouping is re-derived whenever a target fails or is demoted
	// mid-stream: the remaining entries skip to their next live successor
	// instead of being retried into the shutdown deadline. excluded grows
	// monotonically, so the loop terminates after at most one failure per
	// configured member.
	excluded := map[string]bool{n.self.ID: true}
	regroup := func(entries []service.CacheEntry) map[string][]service.CacheEntry {
		alive := make([]Member, 0, n.full.Size())
		for _, m := range n.full.Members() {
			if !excluded[m.ID] && n.PeerState(m.ID) != "demoted" {
				alive = append(alive, m)
			}
		}
		r, err := NewRing(alive)
		if err != nil {
			return nil // nobody left to receive
		}
		out := make(map[string][]service.CacheEntry)
		for _, e := range entries {
			k, err := cache.ParseKey(e.Key)
			if err != nil {
				continue
			}
			out[r.Owner(k).ID] = append(out[r.Owner(k).ID], e)
		}
		return out
	}
	batches := func(entries []service.CacheEntry) int {
		return (len(entries) + handoffBatch - 1) / handoffBatch
	}

	pending := regroup(n.srv.ExportCache())
	receivers := map[string]bool{}
	retarget := func(entries []service.CacheEntry, failed string) {
		excluded[failed] = true
		re := regroup(entries)
		if re == nil {
			rep.FailedBatches += batches(entries)
			return
		}
		for id, es := range re {
			pending[id] = append(pending[id], es...)
		}
	}

	for len(pending) > 0 {
		// Stable order so two drains of the same cache behave the same.
		ids := make([]string, 0, len(pending))
		for id := range pending {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		id := ids[0]
		entries := pending[id]
		delete(pending, id)
		cl := n.clients[id]
		if cl == nil {
			rep.FailedBatches += batches(entries)
			continue
		}
		for start := 0; start < len(entries); start += handoffBatch {
			if ctx.Err() != nil {
				n.log.Warn("cluster: drain handoff cut short by deadline",
					"delivered", rep.Entries, "peer", id)
				n.recordHandoffSent(rep)
				return rep
			}
			if n.PeerState(id) == "demoted" {
				// The detector demoted the target mid-stream (it crashed,
				// or announced its own drain): skip it — nothing failed,
				// the remainder just re-targets.
				n.log.Warn("cluster: handoff target demoted mid-stream; re-targeting",
					"peer", id, "remaining", len(entries)-start)
				retarget(entries[start:], id)
				break
			}
			end := min(start+handoffBatch, len(entries))
			batch := entries[start:end]
			req := HandoffRequest{From: n.self.ID, Reason: "drain", Entries: batch}
			var resp handoffResponse
			if err := cl.PostJSON(ctx, "/internal/handoff", req, &resp); err != nil {
				// One exhausted-retries batch is evidence enough during a
				// drain: count it lost and move the target's remaining
				// entries to their next successor rather than feeding
				// every batch into the same dead peer's retry budget.
				rep.FailedBatches++
				n.log.Warn("cluster: handoff batch failed; re-targeting the remainder",
					"peer", id, "entries", len(batch), "err", err)
				retarget(entries[end:], id)
				break
			}
			receivers[id] = true
			rep.Batches++
			rep.Entries += len(batch)
			for _, e := range batch {
				rep.Bytes += int64(len(e.Body))
			}
		}
	}
	rep.Peers = len(receivers)
	n.recordHandoffSent(rep)
	n.log.Info("cluster: drain handoff complete",
		"peers", rep.Peers, "entries", rep.Entries, "bytes", rep.Bytes,
		"batches", rep.Batches, "failedBatches", rep.FailedBatches)
	return rep
}

func (n *Node) recordHandoffSent(rep HandoffReport) {
	n.handoffSentEntries.Add(int64(rep.Entries))
	n.handoffSentBytes.Add(rep.Bytes)
}

// isBodyTooLarge reports whether a request-body read failed because the
// http.MaxBytesReader cap was hit (the 413 case, distinct from a client
// that disconnected mid-upload).
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// handleHandoff imports a batch of peer cache entries (drain handoff or
// replication push). Undecodable entries are skipped — the sender's cache
// may outrun this binary's vocabulary during a rolling upgrade, and a
// cache import must never fail the batch over one entry it cannot hold.
// The body is hard-bounded: an authenticated peer must not be able to OOM
// a receiver with one oversized frame, so beyond maxHandoffBody the read
// stops and the batch is refused with 413.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHandoffBody))
	if err != nil {
		if isBodyTooLarge(err) {
			n.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("cluster: handoff body exceeds %d bytes", maxHandoffBody))
			return
		}
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read handoff: %w", err))
		return
	}
	var req HandoffRequest
	if err := strictUnmarshal(body, &req); err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: decode handoff: %w", err))
		return
	}
	imported := 0
	var importedBytes int64
	for _, e := range req.Entries {
		if err := n.srv.ImportCacheEntry(e); err != nil {
			n.log.Warn("cluster: handoff entry rejected", "from", req.From, "key", e.Key, "err", err)
			continue
		}
		imported++
		importedBytes += int64(len(e.Body))
	}
	n.handoffRecvEntries.Add(int64(imported))
	n.handoffRecvBytes.Add(importedBytes)
	n.log.Debug("cluster: handoff received",
		"from", req.From, "reason", req.Reason, "entries", imported, "bytes", importedBytes)
	n.writeJSON(w, handoffResponse{Imported: imported})
}

// handleDeparting demotes the announcing peer (drain cause: authoritative,
// bypasses the cooldown) so its keys reassign before its listener closes.
func (n *Node) handleDeparting(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		if isBodyTooLarge(err) {
			n.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("cluster: departure body exceeds %d bytes", maxBody))
			return
		}
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read departure: %w", err))
		return
	}
	var req departingRequest
	if err := strictUnmarshal(body, &req); err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: decode departure: %w", err))
		return
	}
	if req.Node == "" {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: departure without a node ID"))
		return
	}
	n.log.Info("cluster: peer announced departure", "peer", req.Node)
	n.demote(req.Node, causeDrain)
	n.writeJSON(w, map[string]any{"ok": true})
}
