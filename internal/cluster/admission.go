package cluster

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the bucket for requests that carry no tenant header.
const DefaultTenant = "anon"

// maxTenants bounds the admission table: a hostile client minting a fresh
// tenant name per request must not grow node memory without bound. Past
// the cap, idle full-bucket tenants are evicted first; if every tenant is
// active, new names share the overflow bucket.
const maxTenants = 4096

// overflowTenant absorbs tenants past the table cap, so cardinality abuse
// degrades into shared (stricter) limiting instead of memory growth.
const overflowTenant = "~overflow"

// TenantPolicy is the per-tenant admission policy: a token bucket over
// request arrivals plus an in-flight quota. The zero value disables
// admission entirely.
type TenantPolicy struct {
	// Rate is the sustained request rate per tenant in requests/second;
	// <= 0 disables rate limiting.
	Rate float64
	// Burst is the token bucket capacity (instantaneous burst headroom).
	// Defaults to ceil(Rate), minimum 1, when Rate is set.
	Burst int
	// MaxInFlight caps a tenant's concurrently admitted requests;
	// <= 0 disables the quota.
	MaxInFlight int
}

// Enabled reports whether any limit is configured.
func (p TenantPolicy) Enabled() bool { return p.Rate > 0 || p.MaxInFlight > 0 }

func (p TenantPolicy) burst() float64 {
	if p.Burst > 0 {
		return float64(p.Burst)
	}
	return math.Max(1, math.Ceil(p.Rate))
}

// tenantState is one tenant's bucket.
type tenantState struct {
	tokens   float64
	last     time.Time
	inflight int
}

// Admission enforces a TenantPolicy per tenant. It sits in front of the
// whole node — cache, breaker and pool — so a hot tenant is shed with 429s
// while the stall-class circuit breaker (which tracks service health, not
// tenant behaviour) stays closed for everyone else.
type Admission struct {
	pol TenantPolicy
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	tenants map[string]*tenantState
	sheds   map[string]int64
}

// NewAdmission builds an Admission for the policy (nil-safe to use when
// the policy is disabled: every request is admitted).
func NewAdmission(pol TenantPolicy) *Admission {
	return &Admission{
		pol:     pol,
		now:     time.Now,
		tenants: make(map[string]*tenantState),
		sheds:   make(map[string]int64),
	}
}

// Admit charges one request to the tenant's bucket. When admitted, release
// must be called exactly once as the request finishes (it returns the
// in-flight slot). When shed, retryAfter estimates the wait until a token
// accrues, for the 429's Retry-After header.
func (a *Admission) Admit(tenant string) (release func(), retryAfter time.Duration, ok bool) {
	if a == nil || !a.pol.Enabled() {
		return func() {}, 0, true
	}
	if tenant == "" {
		tenant = DefaultTenant
	}

	a.mu.Lock()
	defer a.mu.Unlock()

	ts, tenant := a.stateLocked(tenant)
	a.refillLocked(ts)

	if a.pol.MaxInFlight > 0 && ts.inflight >= a.pol.MaxInFlight {
		a.sheds[tenant]++
		return nil, time.Second, false
	}
	if a.pol.Rate > 0 {
		if ts.tokens < 1 {
			a.sheds[tenant]++
			wait := time.Duration((1 - ts.tokens) / a.pol.Rate * float64(time.Second))
			// Ceil to a whole second so the header never renders 0.
			return nil, ((wait-1)/time.Second + 1) * time.Second, false
		}
		ts.tokens--
	}

	ts.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			ts.inflight--
			a.mu.Unlock()
		})
	}, 0, true
}

// Charge debits extra tokens from a tenant's rate bucket, beyond the one
// Admit took on arrival. The sweep coordinator uses it to weight a /sweep
// by its expanded size — one token per dispatched sub-grid — so a grid of
// thousands of points cannot ride through admission at the cost of a
// single /run. The debit may drive the bucket negative (work debt): the
// already-admitted sweep still runs, even one larger than the burst
// capacity, but the tenant's subsequent arrivals are shed until the debt
// amortizes at the configured rate.
func (a *Admission) Charge(tenant string, tokens int) {
	if a == nil || a.pol.Rate <= 0 || tokens <= 0 {
		return
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ts, _ := a.stateLocked(tenant)
	a.refillLocked(ts)
	ts.tokens -= float64(tokens)
}

// stateLocked resolves a tenant name to its bucket, creating it (or
// falling back to the overflow bucket at the table cap) as needed. It
// returns the possibly-remapped name so callers charge the bucket they
// actually got.
func (a *Admission) stateLocked(tenant string) (*tenantState, string) {
	ts := a.tenants[tenant]
	if ts == nil {
		if len(a.tenants) >= maxTenants && !a.evictIdleLocked() {
			tenant = overflowTenant
			ts = a.tenants[tenant]
		}
		if ts == nil {
			ts = &tenantState{tokens: a.pol.burst(), last: a.now()}
			a.tenants[tenant] = ts
		}
	}
	return ts, tenant
}

// refillLocked accrues tokens for the time since the bucket was last
// touched, capped at the burst capacity.
func (a *Admission) refillLocked(ts *tenantState) {
	now := a.now()
	if a.pol.Rate > 0 {
		ts.tokens = math.Min(a.pol.burst(), ts.tokens+now.Sub(ts.last).Seconds()*a.pol.Rate)
	}
	ts.last = now
}

// evictIdleLocked drops one tenant with a full bucket and nothing in
// flight — state indistinguishable from a fresh entry, so eviction cannot
// grant anyone extra budget. Reports whether a slot was freed.
func (a *Admission) evictIdleLocked() bool {
	now := a.now()
	for name, ts := range a.tenants {
		tokens := ts.tokens
		if a.pol.Rate > 0 {
			tokens = math.Min(a.pol.burst(), tokens+now.Sub(ts.last).Seconds()*a.pol.Rate)
		}
		if ts.inflight == 0 && (a.pol.Rate <= 0 || tokens >= a.pol.burst()) {
			delete(a.tenants, name)
			return true
		}
	}
	return false
}

// Sheds snapshots the per-tenant shed counters, sorted by tenant name.
func (a *Admission) Sheds() []TenantSheds {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantSheds, 0, len(a.sheds))
	for name, n := range a.sheds {
		out = append(out, TenantSheds{Tenant: name, Shed: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantSheds is one tenant's shed count.
type TenantSheds struct {
	Tenant string
	Shed   int64
}
