package cluster

import (
	"reflect"
	"testing"
)

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" a=http://10.0.0.1:8077, b=http://10.0.0.2:8077*2 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "a", Addr: "http://10.0.0.1:8077"},
		{ID: "b", Addr: "http://10.0.0.2:8077", Weight: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParsePeers = %+v, want %+v", got, want)
	}

	if got, err := ParsePeers("  "); err != nil || got != nil {
		t.Errorf("empty spec: %v, %v — want nil, nil", got, err)
	}

	for _, bad := range []string{"nodots", "=http://x", "a=", "a=http://x*zero", "a=http://x*0"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted invalid input", bad)
		}
	}
}
