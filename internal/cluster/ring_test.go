package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// testKeys derives n uniformly distributed ring positions the same way real
// canon keys do (first 8 bytes of a SHA-256), so distribution results carry
// over to real traffic.
func testKeys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("test-key-%d", i)))
		out[i] = binary.BigEndian.Uint64(sum[:8])
	}
	return out
}

func eightMembers() []Member {
	ms := make([]Member, 8)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("node-%d", i), Addr: fmt.Sprintf("http://10.0.0.%d:8077", i)}
		if i >= 6 {
			ms[i].Weight = 2 // two double-weight members exercise weighting
		}
	}
	return ms
}

// TestRingDistribution: with 64 virtual nodes per weight unit, every member's
// share of a uniform key population must land within 15% of its
// weight-proportional expectation — the balance bound the ISSUE pins.
func TestRingDistribution(t *testing.T) {
	members := eightMembers()
	ring, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 200_000
	counts := map[string]int{}
	for _, pos := range testKeys(samples) {
		counts[ring.OwnerPos(pos).ID]++
	}
	totalWeight := 0
	for _, m := range members {
		totalWeight += m.weight()
	}
	for _, m := range members {
		expect := float64(samples) * float64(m.weight()) / float64(totalWeight)
		got := float64(counts[m.ID])
		dev := (got - expect) / expect
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("member %s (weight %d): %d keys, expected %.0f (%+.1f%%) — outside the 15%% balance bound",
				m.ID, m.weight(), counts[m.ID], expect, dev*100)
		}
	}
}

// TestRingMovement: removing (or adding) one of N members must move strictly
// fewer than 2/N of the keys, and every moved key must involve the changed
// member — the minimal-disruption property that makes node loss cheap.
func TestRingMovement(t *testing.T) {
	members := eightMembers()
	full, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 100_000
	keys := testKeys(samples)

	t.Run("leave", func(t *testing.T) {
		const gone = "node-3"
		smaller, err := full.Without(gone)
		if err != nil {
			t.Fatal(err)
		}
		if smaller.Version() == full.Version() {
			t.Error("ring version did not change on member removal")
		}
		moved := 0
		for _, pos := range keys {
			before, after := full.OwnerPos(pos).ID, smaller.OwnerPos(pos).ID
			if before == after {
				continue
			}
			moved++
			if before != gone {
				t.Fatalf("key moved from surviving member %s to %s: only the departed member's keys may move", before, after)
			}
		}
		if limit := 2 * samples / len(members); moved >= limit {
			t.Errorf("removal moved %d/%d keys, want < %d (2/N)", moved, samples, limit)
		}
		if moved == 0 {
			t.Error("removal moved no keys: the departed member owned nothing?")
		}
	})

	t.Run("join", func(t *testing.T) {
		const joined = "node-7"
		smaller, err := full.Without(joined)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, pos := range keys {
			before, after := smaller.OwnerPos(pos).ID, full.OwnerPos(pos).ID
			if before == after {
				continue
			}
			moved++
			if after != joined {
				t.Fatalf("join moved a key from %s to %s, not to the joining member", before, after)
			}
		}
		// node-7 is double-weight: its fair share is 2 units of the total.
		if limit := 2 * 2 * samples / (len(members) + 1); moved >= limit {
			t.Errorf("join moved %d/%d keys, want < %d", moved, samples, limit)
		}
	})
}

// TestRingDeterminism: ownership must be a pure function of the membership
// multiset — byte-identical across member input order, GOMAXPROCS 1/4/8,
// and concurrent readers. This is what lets every node route without
// coordination.
func TestRingDeterminism(t *testing.T) {
	members := eightMembers()
	keys := testKeys(2_000)

	ownershipTable := func(r *Ring) string {
		var sb strings.Builder
		for _, pos := range keys {
			sb.WriteString(r.OwnerPos(pos).ID)
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	ref, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	want := ownershipTable(ref)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		shuffled := make([]Member, len(members))
		copy(shuffled, members)
		rand.New(rand.NewSource(int64(procs))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		ring, err := NewRing(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Version() != ref.Version() {
			t.Fatalf("GOMAXPROCS=%d: version %s != reference %s for the same membership", procs, ring.Version(), ref.Version())
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if got := ownershipTable(ring); got != want {
					t.Errorf("GOMAXPROCS=%d: ownership table diverged from reference", procs)
				}
			}()
		}
		wg.Wait()
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate member ID accepted")
	}
	if _, err := NewRing([]Member{{Addr: "http://x"}}); err == nil {
		t.Error("empty member ID accepted")
	}
	solo, err := NewRing([]Member{{ID: "only"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Without("only"); err == nil {
		t.Error("removing the last member must be refused")
	}
	same, err := solo.Without("absent")
	if err != nil || same != solo {
		t.Error("removing an absent member must return the same ring")
	}
}
