package cluster

// Active failure detection with reversible demotion.
//
// The pre-probe cluster learned about peer death only from transport
// evidence — a forward or sweep dispatch exhausting its retries — and the
// verdict was permanent: a restarted node stayed outside every peer's ring
// until the whole fleet restarted. The prober replaces that with a
// suspect→confirm state machine per peer:
//
//	alive --probe failure--> suspect --SuspectAfter consecutive--> demoted
//	suspect --probe success--> alive
//	demoted --RejoinAfter consecutive successes--> alive (readmitted)
//
// A probe is an authenticated GET /healthz. Success means the peer
// answered with a parseable body claiming the expected node identity —
// regardless of HTTP status, so a peer that is merely degraded or shedding
// (503) is still alive; failure is a transport error, an unparseable body,
// or the wrong identity (an address reused by a different node must not
// impersonate a member).
//
// Probes double as the gossip channel: the /healthz body carries the
// peer's ring version and its view of every member's state. A differing
// version is counted as skew, and any member the peer holds not-alive is
// demoted here too (cooldown-gated) — so two nodes that disagree converge
// on the intersection of their live sets, the only set both can route
// consistently. Readmission is never gossiped: each node must witness the
// recovery with its own probes, which keeps a stale third-party view from
// resurrecting a dead peer.

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// peerState is the failure detector's verdict on one peer.
type peerState int

const (
	peerAlive peerState = iota
	peerSuspect
	peerDemoted
)

func (s peerState) String() string {
	switch s {
	case peerAlive:
		return "alive"
	case peerSuspect:
		return "suspect"
	default:
		return "demoted"
	}
}

// peerHealth is the per-peer detector state, guarded by Node.peersMu.
type peerHealth struct {
	state       peerState
	failures    int // consecutive probe failures
	successes   int // consecutive probe successes while demoted
	lastProbe   time.Time
	lastChange  time.Time
	lastReadmit time.Time // gates the demote cooldown
}

// healthzView is the slice of a peer's /healthz body the prober consumes.
type healthzView struct {
	Node        string `json:"node"`
	RingVersion string `json:"ringVersion"`
	Peers       []struct {
		ID    string `json:"id"`
		Alive bool   `json:"alive"`
	} `json:"peers"`
}

// probeJitter spreads one probe tick across ±10% of the base interval.
// Nodes started together (a deploy restarts the fleet at once) would
// otherwise probe in lockstep forever — synchronized bursts that load every
// /healthz handler at the same instant and sample peer liveness at the same
// phase. rand01 is injected for tests; it must return a value in [0, 1).
func probeJitter(base time.Duration, rand01 func() float64) time.Duration {
	return time.Duration(float64(base) * (0.9 + 0.2*rand01()))
}

// probeLoop probes every configured peer each ProbeInterval (±10% jitter
// per tick) until Stop.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	t := time.NewTimer(probeJitter(n.opts.ProbeInterval, rng.Float64))
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		}
		t.Reset(probeJitter(n.opts.ProbeInterval, rng.Float64))
		for _, m := range n.full.Members() {
			if m.ID == n.self.ID {
				continue
			}
			select {
			case <-n.stopCh:
				return
			default:
			}
			n.probeOne(m)
		}
	}
}

// probeOne sends one probe and feeds the outcome into the state machine.
func (n *Node) probeOne(m Member) {
	n.probes.Add(1)
	view, ok := n.fetchHealthz(m)
	if !ok {
		n.probeFailures.Add(1)
	}
	n.observeProbe(m.ID, ok)
	if ok {
		n.absorbGossip(m.ID, view)
	}
}

// fetchHealthz performs the authenticated GET and validates identity.
func (n *Node) fetchHealthz(m Member) (healthzView, bool) {
	var view healthzView
	req, err := http.NewRequest(http.MethodGet, m.Addr+"/healthz", nil)
	if err != nil {
		return view, false
	}
	req.Header = n.probeHeader.Clone()
	resp, err := n.probeHTTP.Do(req)
	if err != nil {
		return view, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if err != nil || json.Unmarshal(body, &view) != nil || view.Node != m.ID {
		return view, false
	}
	return view, true
}

// observeProbe advances the state machine on one probe outcome.
func (n *Node) observeProbe(id string, ok bool) {
	n.peersMu.Lock()
	ph, exists := n.peers[id]
	if !exists {
		n.peersMu.Unlock()
		return
	}
	now := time.Now()
	ph.lastProbe = now
	if ok {
		ph.failures = 0
		switch ph.state {
		case peerSuspect:
			ph.state = peerAlive
			ph.lastChange = now
			n.log.Info("cluster: suspect peer recovered", "peer", id)
		case peerDemoted:
			ph.successes++
			if ph.successes >= n.opts.RejoinAfter {
				n.readmitLocked(id, ph)
			}
		}
		n.peersMu.Unlock()
		return
	}
	ph.successes = 0
	ph.failures++
	if ph.state == peerAlive {
		ph.state = peerSuspect
		ph.lastChange = now
		n.log.Warn("cluster: peer suspect", "peer", id, "failures", ph.failures)
	}
	confirm := ph.state == peerSuspect && ph.failures >= n.opts.SuspectAfter
	n.peersMu.Unlock()
	if confirm {
		n.demote(id, causeProbe)
	}
}

// absorbGossip folds a probed peer's view into ours: count version skew,
// and demote (cooldown-gated) any member the peer reports not-alive that
// we still hold alive. Never self, never the reporting peer itself — its
// own liveness is exactly what the probe just measured firsthand.
func (n *Node) absorbGossip(from string, view healthzView) {
	if view.RingVersion != "" && view.RingVersion != n.ring.Load().Version() {
		n.ringSkews.Add(1)
	}
	for _, p := range view.Peers {
		if p.Alive || p.ID == n.self.ID || p.ID == from {
			continue
		}
		n.peersMu.Lock()
		ph, known := n.peers[p.ID]
		holdAlive := known && ph.state != peerDemoted
		n.peersMu.Unlock()
		if holdAlive {
			n.demote(p.ID, causeGossip)
		}
	}
}
