package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/service"
)

// testCluster is N in-process nodes listening on real TCP ports, so peer
// forwarding exercises the same HTTP path production uses.
type testCluster struct {
	nodes   []*Node
	addrs   []string
	servers []*http.Server
}

func startCluster(t *testing.T, size int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{}
	listeners := make([]net.Listener, size)
	members := make([]Member, size)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addr := "http://" + ln.Addr().String()
		tc.addrs = append(tc.addrs, addr)
		members[i] = Member{ID: fmt.Sprintf("n%d", i), Addr: addr}
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	for i, ln := range listeners {
		o := opts
		o.Self = members[i].ID
		o.Members = members
		o.Logger = quiet
		if o.PeerAttempts == 0 {
			o.PeerAttempts = 2
		}
		if o.PeerBaseDelay == 0 {
			o.PeerBaseDelay = 5 * time.Millisecond
		}
		node, err := New(o, service.Options{Workers: 4, Logger: quiet})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: node.Handler()}
		go hs.Serve(ln)
		tc.nodes = append(tc.nodes, node)
		tc.servers = append(tc.servers, hs)
	}
	t.Cleanup(func() {
		for i := range tc.servers {
			tc.kill(i)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, n := range tc.nodes {
			n.Stop()
			n.Server().Drain(ctx)
		}
	})
	return tc
}

// kill hard-stops node i's HTTP server (listener and live connections).
func (tc *testCluster) kill(i int) {
	if tc.servers[i] != nil {
		tc.servers[i].Close()
		tc.servers[i] = nil
	}
}

func postNode(t *testing.T, addr, path string, body any, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, addr+path, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

var testRunReq = service.RunRequest{
	Workload: service.WorkloadSpec{Name: "fig21", N: 24},
	Scheme:   service.SchemeSpec{Name: "process", X: 4},
	Config:   service.ConfigSpec{P: 4},
}

// TestClusterForwardAndCrossNodeCacheHit: any node accepts the request, the
// key's owner serves it (visible in X-DSServe-Node), and a repeat through a
// different node hits the owner's cache — the cluster behaves as one
// logical content-addressed cache.
func TestClusterForwardAndCrossNodeCacheHit(t *testing.T) {
	tc := startCluster(t, 3, Options{})

	key, err := service.RunKey(testRunReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.nodes[0].Ring().Owner(key)

	// Pick two distinct edge nodes that do not own the key.
	var edges []int
	for i, n := range tc.nodes {
		if n.self.ID != owner.ID {
			edges = append(edges, i)
		}
	}
	if len(edges) < 2 {
		t.Fatalf("want 2 non-owner nodes in a 3-node ring, got %d", len(edges))
	}

	resp, body := postNode(t, tc.addrs[edges[0]], "/run", testRunReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first /run via %s: %d %s", tc.nodes[edges[0]].self.ID, resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderNode); got != owner.ID {
		t.Errorf("first run served by %q, ring owner is %q", got, owner.ID)
	}
	var first service.RunResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Key != key.String() {
		t.Errorf("served key %s, routed by %s", first.Key, key)
	}
	if first.Cached {
		t.Error("first evaluation reported cached")
	}

	resp, body = postNode(t, tc.addrs[edges[1]], "/run", testRunReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second /run via %s: %d %s", tc.nodes[edges[1]].self.ID, resp.StatusCode, body)
	}
	var second service.RunResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat through a different node missed the cluster cache")
	}
	if second.Key != first.Key || second.Cycles != first.Cycles {
		t.Errorf("cross-node answers diverge: %+v vs %+v", first, second)
	}

	for _, i := range edges {
		if fwd, _, _ := tc.nodes[i].Counters(); fwd != 1 {
			t.Errorf("edge node %s forwards = %d, want 1", tc.nodes[i].self.ID, fwd)
		}
	}
	ownerNode := tc.nodes[0]
	for _, n := range tc.nodes {
		if n.self.ID == owner.ID {
			ownerNode = n
		}
	}
	if fwd, _, _ := ownerNode.Counters(); fwd != 0 {
		t.Errorf("owner forwarded its own key %d times", fwd)
	}
}

// TestClusterPeerAuth: the forwarded flag is a trusted-channel marker; with
// a peer token configured, presenting the flag without the token is
// rejected before any handler runs, so users cannot spoof their way past
// tenant admission or routing.
func TestClusterPeerAuth(t *testing.T) {
	tc := startCluster(t, 1, Options{PeerToken: "s3cret"})

	resp, _ := postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{HeaderForwarded: "1"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("forged forwarded flag: %d, want 403", resp.StatusCode)
	}
	resp, body := postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{
		HeaderForwarded: "1",
		HeaderPeerToken: "s3cret",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated peer request: %d %s", resp.StatusCode, body)
	}
}

// TestClusterSweepHealsAroundDeadNode: a 3-node sweep with one member dead
// must mark it dead, steal its sub-grids onto the survivors, and still
// produce exactly the single-node answer — never a hang, never a lost point.
func TestClusterSweepHealsAroundDeadNode(t *testing.T) {
	tc := startCluster(t, 3, Options{StealChunk: 2})

	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid:     service.SweepGrid{X: []int{2, 4}, P: []int{2, 4}, Chunk: []int64{1, 2, 4}},
	}
	_, keys, err := service.SweepPointKeys(sweep)
	if err != nil {
		t.Fatal(err)
	}
	ring := tc.nodes[0].Ring()
	ownerCount := map[string]int{}
	for _, k := range keys {
		ownerCount[ring.Owner(k).ID]++
	}
	if len(ownerCount) != 3 {
		t.Fatalf("grid's 12 keys spread over %d of 3 members (%v); enlarge the test grid", len(ownerCount), ownerCount)
	}

	// Kill node 2 before the sweep: its sub-grids must be dispatched, fail,
	// and be re-dispatched to the survivors.
	tc.kill(2)
	deadID := tc.nodes[2].self.ID

	resp, body := postNode(t, tc.addrs[0], "/sweep", sweep, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sweep with a dead member: %d %s", resp.StatusCode, body)
	}
	var got service.SweepResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 || got.Evaluated != 12 {
		t.Fatalf("sweep evaluated %d / failed %d of 12 points: %s", got.Evaluated, got.Failed, body)
	}

	// Single-node oracle on a fresh standalone server.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	oracleSrv := service.NewServer(service.Options{Workers: 4, Logger: quiet})
	defer oracleSrv.Drain(context.Background())
	oracle, err := oracleSrv.EvalSweep(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(oracle.Points) {
		t.Fatalf("cluster returned %d points, oracle %d", len(got.Points), len(oracle.Points))
	}
	for i := range oracle.Points {
		a, b := oracle.Points[i], got.Points[i]
		a.Cached, b.Cached = false, false
		if a != b {
			t.Errorf("point %d: oracle %+v vs cluster %+v", i, a, b)
		}
	}
	if len(got.Pareto) != len(oracle.Pareto) {
		t.Fatalf("merged Pareto has %d points, oracle %d", len(got.Pareto), len(oracle.Pareto))
	}
	for i := range oracle.Pareto {
		a, b := oracle.Pareto[i], got.Pareto[i]
		a.Cached, b.Cached = false, false
		if a != b {
			t.Errorf("Pareto point %d: oracle %+v vs cluster %+v", i, a, b)
		}
	}

	if tc.nodes[0].Ring().Has(deadID) {
		t.Error("dead member still in the coordinator's ring view")
	}
	_, steals, peerErrs := tc.nodes[0].Counters()
	if peerErrs < 1 {
		t.Errorf("peerErrors = %d, want >= 1 (the dead node's dispatch must have failed)", peerErrs)
	}
	if steals < 1 {
		t.Errorf("steals = %d, want >= 1 (the dead node's sub-grids must have been stolen)", steals)
	}
}

// TestClusterForwardClientCancelKeepsPeerAlive: a caller that disconnects
// (or times out client-side) while its request is being forwarded says
// nothing about the peer's health — the peer must stay in the ring and no
// peer error be counted, or one impatient client would permanently shrink
// the edge node's ring view.
func TestClusterForwardClientCancelKeepsPeerAlive(t *testing.T) {
	// Long peer backoff so the caller can cancel while the forward is
	// still mid-retry against an unreachable owner.
	tc := startCluster(t, 2, Options{PeerAttempts: 3, PeerBaseDelay: 300 * time.Millisecond})

	key, err := service.RunKey(testRunReq)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.nodes[0].Ring().Owner(key)
	edge := 0
	if tc.nodes[edge].self.ID == owner.ID {
		edge = 1
	}
	tc.kill(1 - edge)

	b, err := json.Marshal(testRunReq)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, tc.addrs[edge]+"/run", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("canceled request unexpectedly succeeded client-side")
	}

	// Let the server-side handler observe the cancellation and unwind.
	time.Sleep(500 * time.Millisecond)
	if !tc.nodes[edge].Ring().Has(owner.ID) {
		t.Errorf("caller cancellation mid-forward marked peer %s dead", owner.ID)
	}
	if _, _, peerErrs := tc.nodes[edge].Counters(); peerErrs != 0 {
		t.Errorf("peerErrors = %d after caller cancellation, want 0", peerErrs)
	}
}

// TestClusterSweepWeightedAdmission: a sweep is charged by its expanded
// size — one token per StealChunk-sized sub-grid — so a large grid cannot
// ride through per-tenant admission at the price of a single /run.
func TestClusterSweepWeightedAdmission(t *testing.T) {
	// Burst 6 at a negligible refill rate: a sweep expanding to 12 points
	// with StealChunk 2 costs 6 tokens, draining the bucket — a flat
	// per-request charge would have left 5 behind.
	tc := startCluster(t, 1, Options{
		Tenant:     TenantPolicy{Rate: 0.001, Burst: 6},
		StealChunk: 2,
	})

	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid:     service.SweepGrid{X: []int{2, 4}, P: []int{2, 4}, Chunk: []int64{1, 2, 4}},
	}
	resp, body := postNode(t, tc.addrs[0], "/sweep", sweep, map[string]string{HeaderTenant: "hot"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep within budget: %d %s", resp.StatusCode, body)
	}
	resp, _ = postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{HeaderTenant: "hot"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("/run after a 12-point sweep: %d, want 429 (sweeps must be charged by size)", resp.StatusCode)
	}
	// The sweep's work debt is the hot tenant's problem alone.
	resp, body = postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{HeaderTenant: "cool"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cool tenant after hot tenant's sweep: %d %s", resp.StatusCode, body)
	}
}

// TestClusterNoTokenWarning: a multi-node cluster without a peer token
// silently loses forwarded-flag authentication, so construction must say
// so; single-node and token-configured clusters must not cry wolf.
func TestClusterNoTokenWarning(t *testing.T) {
	members := []Member{
		{ID: "a", Addr: "http://127.0.0.1:1"},
		{ID: "b", Addr: "http://127.0.0.1:2"},
	}
	build := func(opts Options) string {
		var buf bytes.Buffer
		logger := slog.New(slog.NewTextHandler(&buf, nil))
		opts.Logger = logger
		node, err := New(opts, service.Options{Workers: 1, Logger: logger})
		if err != nil {
			t.Fatal(err)
		}
		node.Server().Drain(context.Background())
		return buf.String()
	}

	if logs := build(Options{Self: "a", Members: members}); !strings.Contains(logs, "peer token") {
		t.Errorf("multi-node cluster without a peer token did not warn: %q", logs)
	}
	if logs := build(Options{Self: "a", Members: members, PeerToken: "s3cret"}); strings.Contains(logs, "peer token") {
		t.Errorf("token-configured cluster warned anyway: %q", logs)
	}
	if logs := build(Options{Self: "solo"}); strings.Contains(logs, "peer token") {
		t.Errorf("single-node cluster warned about peer tokens: %q", logs)
	}
}

// TestClusterTenantShed: a hot tenant exhausting its bucket gets 429s with
// Retry-After while the breaker stays closed and other tenants keep
// working — admission failures are tenant problems, not service problems.
func TestClusterTenantShed(t *testing.T) {
	tc := startCluster(t, 1, Options{Tenant: TenantPolicy{Rate: 0.001, Burst: 1}})
	node := tc.nodes[0]

	resp, body := postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{HeaderTenant: "hot"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first hot request: %d %s", resp.StatusCode, body)
	}
	resp, _ = postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{HeaderTenant: "hot"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hot tenant over budget: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("shed response Retry-After = %q, want a positive whole-second value", ra)
	}
	resp, body = postNode(t, tc.addrs[0], "/run", testRunReq, map[string]string{HeaderTenant: "cool"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cool tenant during hot shed: %d %s", resp.StatusCode, body)
	}
	if st := node.Server().Breaker().State(); st != service.BreakerClosed {
		t.Errorf("breaker state = %v after tenant shedding, want closed", st)
	}

	metricsResp, err := http.Get(tc.addrs[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if !strings.Contains(string(metrics), `dsserve_tenant_shed_total{tenant="hot"} 1`) {
		t.Errorf("metrics missing the hot tenant's shed counter:\n%s", metrics)
	}
}

// TestClusterHealthz: every node's /healthz reports its identity and the
// cluster view — node ID, ring version, and per-peer liveness.
func TestClusterHealthz(t *testing.T) {
	tc := startCluster(t, 3, Options{})

	for i, n := range tc.nodes {
		resp, err := http.Get(tc.addrs[i] + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var hz struct {
			Node        string `json:"node"`
			RingVersion string `json:"ringVersion"`
			RingMembers int    `json:"ringMembers"`
			Peers       []struct {
				ID    string `json:"id"`
				Addr  string `json:"addr"`
				Alive bool   `json:"alive"`
			} `json:"peers"`
		}
		if err := json.Unmarshal(body, &hz); err != nil {
			t.Fatalf("healthz decode: %v (%s)", err, body)
		}
		if hz.Node != n.self.ID {
			t.Errorf("node %d healthz reports identity %q, want %q", i, hz.Node, n.self.ID)
		}
		if hz.RingVersion != tc.nodes[0].Ring().Version() {
			t.Errorf("node %d ring version %q diverges from node 0", i, hz.RingVersion)
		}
		if hz.RingMembers != 3 || len(hz.Peers) != 3 {
			t.Errorf("node %d sees %d members / %d peers, want 3/3", i, hz.RingMembers, len(hz.Peers))
		}
		for _, p := range hz.Peers {
			if !p.Alive {
				t.Errorf("node %d reports peer %s dead at startup", i, p.ID)
			}
		}
	}

	// Metrics expose the peer counters on every node.
	resp, err := http.Get(tc.addrs[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"dsserve_peer_forwards_total", "dsserve_steals_total", "dsserve_peer_errors_total", "dsserve_ring_members 3"} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}
