package cluster

// K-successor replication.
//
// Every fresh cache fill on the owner is pushed, asynchronously and
// best-effort, to the key's K ring-successors — the exact nodes ownership
// would fall to if the owner left (Ring.Successors). When the owner is
// later demoted, the router's fall-through (routeOrServe) lands the key's
// requests on those successors, which answer from the replica instead of
// recomputing: owner loss degrades from a latency cliff (full simulation)
// to a cache read.
//
// Replication never changes response bytes. The pushed entry is the same
// portable encoding the drain handoff uses (service.CacheEntry), and the
// content address guarantees any two values under one key are the same
// bytes — a replica answer differs from the owner's only in its
// provenance (Cached:true without a local compute).
//
// The queue is bounded with drop-oldest backpressure: replication must
// never apply backpressure to the serving path, and under a fill storm
// the newest entries are the ones most likely to be asked for again.

import (
	"context"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/service"
)

// replQueueCap bounds the replication queue; beyond it the oldest pending
// fill is dropped (and counted) rather than blocking the serving path.
const replQueueCap = 256

// replPushTimeout bounds one replica push round (all K successors).
const replPushTimeout = 5 * time.Second

// replJob is one cache entry awaiting replication: a fresh fill fanned to
// every successor, or an anti-entropy repair targeted at the one successor
// measured to be missing it.
type replJob struct {
	key   cache.Key
	entry service.CacheEntry
	// only, when set, restricts the push to that member (it must still be
	// a current successor of the key when the job drains).
	only string
	// antientropy marks repair pushes for separate accounting.
	antientropy bool
}

// onCacheFill is the service.Options.OnCacheFill hook: enqueue and return.
func (n *Node) onCacheFill(key cache.Key, e service.CacheEntry) {
	n.enqueueReplica(replJob{key: key, entry: e})
}

// enqueueReplica queues one job for the replication worker, bounded with
// drop-oldest backpressure; reports whether the job was accepted (false
// only once the node is stopping).
func (n *Node) enqueueReplica(job replJob) bool {
	n.replMu.Lock()
	defer n.replMu.Unlock()
	if n.replStopped {
		return false
	}
	if len(n.replQ) >= replQueueCap {
		n.replQ = n.replQ[1:]
		n.replicaDrops.Add(1)
	}
	n.replQ = append(n.replQ, job)
	n.replCond.Signal()
	return true
}

// replicateLoop drains the queue until Stop.
func (n *Node) replicateLoop() {
	defer n.wg.Done()
	for {
		n.replMu.Lock()
		for len(n.replQ) == 0 && !n.replStopped {
			n.replCond.Wait()
		}
		if n.replStopped {
			n.replMu.Unlock()
			return
		}
		job := n.replQ[0]
		n.replQ = n.replQ[1:]
		n.replMu.Unlock()
		n.replicateOne(job)
	}
}

// replicateOne pushes one entry to each of the key's live-ring successors.
// Push failures are counted but deliberately do not demote the peer: the
// prober owns liveness, and a best-effort push is one data point too weak
// to shrink the ring on.
func (n *Node) replicateOne(job replJob) {
	succ := n.ring.Load().Successors(job.key, n.opts.Replicas)
	if len(succ) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), replPushTimeout)
	defer cancel()
	reason := "replicate"
	if job.antientropy {
		reason = "antientropy"
	}
	req := HandoffRequest{
		From:    n.self.ID,
		Reason:  reason,
		Entries: []service.CacheEntry{job.entry},
	}
	for _, m := range succ {
		if m.ID == n.self.ID || (job.only != "" && m.ID != job.only) {
			// A targeted repair whose target is no longer a successor (the
			// ring moved again while the job was queued) is silently
			// skipped; the next scan re-measures against the new ring.
			continue
		}
		cl := n.clients[m.ID]
		if cl == nil {
			continue
		}
		if err := cl.PostJSON(ctx, "/internal/handoff", req, nil); err != nil {
			n.replicaPushErrors.Add(1)
			n.log.Debug("cluster: replica push failed", "peer", m.ID, "key", job.entry.Key, "err", err)
			continue
		}
		n.replicaPushes.Add(1)
		if job.antientropy {
			n.antiPushes.Add(1)
		}
	}
}
