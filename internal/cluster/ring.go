// Package cluster turns N dsserve processes into one logical service.
//
// The paper's determinism argument is what makes this layer thin: every
// /run, /verify and /compile answer is a pure function of its canonical
// content address (internal/cache), so the cache key is an exact sharding
// unit — any node can compute any result and get byte-identical answers,
// but routing a key to one owning node turns the cluster's combined memory
// into one big content-addressed cache instead of N overlapping ones.
//
// The pieces:
//
//   - Ring (this file): a deterministic consistent-hash ring with weighted
//     virtual nodes and versioned membership, mapping canon keys to owners.
//   - Node (node.go): the peer middleware in front of a service.Server —
//     admission, ownership routing with loop-safe forwarding, and failure
//     healing (an unreachable owner is removed from the ring and its keys
//     reassigned to the survivors).
//   - Work-stealing sweeps (steal.go): /sweep grids split into
//     owner-aligned sub-grids dispatched cluster-wide, idle nodes stealing
//     pending sub-grids, lost nodes' sub-grids re-dispatched to survivors.
//   - Admission (admission.go): per-tenant token buckets and in-flight
//     quotas in front of everything, so one hot tenant is shed with 429s
//     without opening the stall-class circuit breaker for everyone.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"github.com/csrd-repro/datasync/internal/cache"
)

// ringCanonVersion prefixes every ring-position hash. Bumping it remaps
// the whole ring, so it changes only with the placement algorithm itself.
const ringCanonVersion = "dscluster-ring-v1"

// vnodesPerWeight is how many virtual nodes one unit of member weight
// contributes. More virtual nodes smooth the key distribution (the
// distribution test pins +/-15% at 256/weight across 8 members; 64 was
// measurably too lumpy, one member drew +19%) at the cost of a longer
// sorted array; lookups stay O(log n).
const vnodesPerWeight = 256

// Member is one dsserve process in the cluster.
type Member struct {
	// ID is the stable node identity (the -node-id flag). Ring placement
	// hashes the ID, never the address, so a node can move hosts without
	// remapping its keys.
	ID string `json:"id"`
	// Addr is the node's base URL, e.g. "http://10.0.0.7:8077".
	Addr string `json:"addr"`
	// Weight scales the member's share of the key space (capacity-
	// proportional sharding); values < 1 are treated as 1.
	Weight int `json:"weight,omitempty"`
}

func (m Member) weight() int {
	if m.Weight < 1 {
		return 1
	}
	return m.Weight
}

// vnode is one virtual node: a deterministic position owned by a member.
type vnode struct {
	pos    uint64
	member int32 // index into members
}

// Ring is an immutable consistent-hash ring over the cluster membership.
// Immutability is the concurrency story: membership changes build a new
// ring and swap it atomically, so a request observes one coherent view.
type Ring struct {
	members []Member // sorted by ID
	vnodes  []vnode  // sorted by (pos, member ID)
	version string
}

// NewRing builds the ring for a membership set. Construction is a pure
// function of the (ID, weight) multiset: every node that knows the same
// membership computes byte-identical ownership, with no coordination.
func NewRing(members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID (addr %q)", m.Addr)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = true
	}

	r := &Ring{members: ms}
	for i, m := range ms {
		n := m.weight() * vnodesPerWeight
		for v := 0; v < n; v++ {
			r.vnodes = append(r.vnodes, vnode{pos: vnodePos(m.ID, v), member: int32(i)})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		// A 64-bit collision between virtual nodes is astronomically rare
		// but must still order deterministically: member ID breaks the tie.
		return r.members[a.member].ID < r.members[b.member].ID
	})

	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", ringCanonVersion)
	for _, m := range ms {
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00", m.ID, m.Addr, m.weight())
	}
	r.version = hex.EncodeToString(h.Sum(nil))[:16]
	return r, nil
}

// vnodePos hashes one (member, replica) pair to its ring position.
func vnodePos(id string, replica int) uint64 {
	sum := sha256.Sum256([]byte(ringCanonVersion + "\x00" + id + "\x00" + strconv.Itoa(replica)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning a canonical content address.
func (r *Ring) Owner(k cache.Key) Member { return r.OwnerPos(k.Ring()) }

// OwnerPos returns the member owning a raw ring position: the member of
// the first virtual node at or clockwise-after pos, wrapping at the top.
func (r *Ring) OwnerPos(pos uint64) Member {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].pos >= pos })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.members[r.vnodes[i].member]
}

// Successors returns up to count distinct members clockwise after the
// owner of a canonical content address, owner excluded. These are the
// key's replica holders: the nodes whose virtual nodes would inherit the
// key if the owner left, in inheritance order — so K-successor replication
// places copies exactly where ownership will land after a failure.
func (r *Ring) Successors(k cache.Key, count int) []Member {
	return r.SuccessorsPos(k.Ring(), count)
}

// SuccessorsPos is Successors for a raw ring position.
func (r *Ring) SuccessorsPos(pos uint64, count int) []Member {
	if count <= 0 || len(r.members) <= 1 {
		return nil
	}
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].pos >= pos })
	if i == len(r.vnodes) {
		i = 0
	}
	seen := make(map[int32]bool, count+1)
	seen[r.vnodes[i].member] = true
	var out []Member
	for step := 1; step < len(r.vnodes) && len(out) < count; step++ {
		v := r.vnodes[(i+step)%len(r.vnodes)]
		if !seen[v.member] {
			seen[v.member] = true
			out = append(out, r.members[v.member])
		}
	}
	return out
}

// Version is a content hash of the membership set (IDs, addresses,
// weights): two nodes agree on ownership exactly when their versions match.
func (r *Ring) Version() string { return r.version }

// Members returns the membership, sorted by ID.
func (r *Ring) Members() []Member { return r.members }

// Size is the member count.
func (r *Ring) Size() int { return len(r.members) }

// Member looks a member up by ID.
func (r *Ring) Member(id string) (Member, bool) {
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i].ID >= id })
	if i < len(r.members) && r.members[i].ID == id {
		return r.members[i], true
	}
	return Member{}, false
}

// Has reports whether id is a member.
func (r *Ring) Has(id string) bool {
	_, ok := r.Member(id)
	return ok
}

// Without returns a new ring with the member removed — the node-loss path.
// Only the departed member's virtual nodes vanish, so only its keys move
// (to the survivors next clockwise), which is the minimal-movement
// property the membership test pins. Removing the last member is refused:
// a cluster of one serves everything itself.
func (r *Ring) Without(id string) (*Ring, error) {
	if !r.Has(id) {
		return r, nil
	}
	if len(r.members) == 1 {
		return nil, fmt.Errorf("cluster: refusing to remove the last member %q", id)
	}
	rest := make([]Member, 0, len(r.members)-1)
	for _, m := range r.members {
		if m.ID != id {
			rest = append(rest, m)
		}
	}
	return NewRing(rest)
}
