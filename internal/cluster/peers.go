package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePeers parses the -peers flag: a comma-separated list of
// "id=addr" entries, each with an optional "*weight" suffix, e.g.
//
//	a=http://10.0.0.1:8077,b=http://10.0.0.2:8077*2
//
// An empty spec yields no peers (a cluster of one). Every node in a
// cluster must be started with the same membership — ring versions (and
// thus ownership) agree exactly when the parsed sets agree.
func ParsePeers(spec string) ([]Member, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Member
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, rest, ok := strings.Cut(entry, "=")
		if !ok || id == "" || rest == "" {
			return nil, fmt.Errorf("cluster: peer entry %q is not id=addr[*weight]", entry)
		}
		m := Member{ID: id}
		if addr, w, ok := strings.Cut(rest, "*"); ok {
			weight, err := strconv.Atoi(w)
			if err != nil || weight < 1 {
				return nil, fmt.Errorf("cluster: peer entry %q has invalid weight %q", entry, w)
			}
			m.Addr, m.Weight = addr, weight
		} else {
			m.Addr = rest
		}
		out = append(out, m)
	}
	return out, nil
}
