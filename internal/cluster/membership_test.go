package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/service"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// restart re-listens on node i's original address and serves its handler
// again — the in-process analogue of restarting a crashed dsserve on the
// same host:port.
func (tc *testCluster) restart(t *testing.T, i int) {
	t.Helper()
	addr := strings.TrimPrefix(tc.addrs[i], "http://")
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hs := &http.Server{Handler: tc.nodes[i].Handler()}
	go hs.Serve(ln)
	tc.servers[i] = hs
}

// quietNode builds a standalone Node (no HTTP listener) for state-machine
// tests; probing and replication loops are off unless opts enables them.
func quietNode(t *testing.T, opts Options, members []Member) *Node {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	opts.Members = members
	opts.Logger = quiet
	n, err := New(opts, service.Options{Workers: 1, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Stop()
		n.Server().Drain(context.Background())
	})
	return n
}

// TestClusterKillReplicaServeRestartRejoin is the acceptance scenario: a
// 3-node cluster loses a node, serves that node's key from the replica its
// successor holds — byte-identical to the pre-kill cached response, no
// recompute — then the node comes back and rejoins the ring with no other
// process restarted.
func TestClusterKillReplicaServeRestartRejoin(t *testing.T) {
	tc := startCluster(t, 3, Options{
		PeerToken:      "s3cret",
		ProbeInterval:  25 * time.Millisecond,
		SuspectAfter:   2,
		RejoinAfter:    2,
		DemoteCooldown: -1, // probes drive every transition in this test
	})

	key, err := service.RunKey(testRunReq)
	if err != nil {
		t.Fatal(err)
	}
	full := tc.nodes[0].full
	owner := full.Owner(key)
	succs := full.Successors(key, 1)
	if len(succs) != 1 {
		t.Fatalf("successors = %v, want exactly 1", succs)
	}
	victimIdx, succIdx := -1, -1
	var survivors []int
	for i, n := range tc.nodes {
		switch n.self.ID {
		case owner.ID:
			victimIdx = i
		case succs[0].ID:
			succIdx = i
		}
		if n.self.ID != owner.ID {
			survivors = append(survivors, i)
		}
	}
	if victimIdx < 0 || succIdx < 0 {
		t.Fatalf("owner %s / successor %s not found among nodes", owner.ID, succs[0].ID)
	}

	// Fill the key on its owner, then fetch the canonical cached bytes.
	resp, body := postNode(t, tc.addrs[victimIdx], "/run", testRunReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fill: %d %s", resp.StatusCode, body)
	}
	resp, cachedBody := postNode(t, tc.addrs[victimIdx], "/run", testRunReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached fetch: %d %s", resp.StatusCode, cachedBody)
	}
	var cached service.RunResponse
	if err := json.Unmarshal(cachedBody, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second fetch on the owner was not a cache hit")
	}

	// K-successor replication lands the entry on the successor.
	waitFor(t, 5*time.Second, func() bool {
		return tc.nodes[succIdx].Server().CacheHas(key)
	}, "replica push to the successor")

	// Kill the owner; the survivors' probes demote it.
	tc.kill(victimIdx)
	for _, i := range survivors {
		i := i
		waitFor(t, 5*time.Second, func() bool {
			return tc.nodes[i].PeerState(owner.ID) == "demoted"
		}, fmt.Sprintf("%s demoting %s", tc.nodes[i].self.ID, owner.ID))
	}
	if live := tc.nodes[succIdx].Ring(); live.Owner(key).ID != succs[0].ID {
		t.Fatalf("post-demotion live owner = %s, want successor %s", live.Owner(key).ID, succs[0].ID)
	}

	// The successor serves the dead owner's key from its replica: same
	// bytes, no recompute, replica-hit counted.
	beforeHits := tc.nodes[succIdx].Membership().ReplicaHits
	resp, replicaBody := postNode(t, tc.addrs[succIdx], "/run", testRunReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica serve: %d %s", resp.StatusCode, replicaBody)
	}
	if got := resp.Header.Get(HeaderNode); got != succs[0].ID {
		t.Errorf("replica response served by %q, want successor %s", got, succs[0].ID)
	}
	if !bytes.Equal(replicaBody, cachedBody) {
		t.Errorf("replica response bytes differ from the pre-kill cached response:\npre-kill: %s\nreplica:  %s", cachedBody, replicaBody)
	}
	if got := tc.nodes[succIdx].Membership().ReplicaHits; got != beforeHits+1 {
		t.Errorf("successor replicaHits = %d, want %d", got, beforeHits+1)
	}

	// Restart the victim on its original address: the survivors' probes
	// readmit it without any other process restarting.
	tc.restart(t, victimIdx)
	for _, i := range survivors {
		i := i
		waitFor(t, 5*time.Second, func() bool {
			return tc.nodes[i].PeerState(owner.ID) == "alive"
		}, fmt.Sprintf("%s readmitting %s", tc.nodes[i].self.ID, owner.ID))
	}
	for _, i := range survivors {
		if got := tc.nodes[i].Ring().Version(); got != full.Version() {
			t.Errorf("%s ring version %s after rejoin, want the full membership's %s",
				tc.nodes[i].self.ID, got, full.Version())
		}
		if ms := tc.nodes[i].Membership(); ms.Rejoins < 1 || ms.Demotions < 1 {
			t.Errorf("%s rejoins=%d demotions=%d, want both >= 1", tc.nodes[i].self.ID, ms.Rejoins, ms.Demotions)
		}
	}

	// Forwards reach the restarted node again.
	resp, body = postNode(t, tc.addrs[survivors[0]], "/run", testRunReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rejoin fetch: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderNode); got != owner.ID {
		t.Errorf("post-rejoin request served by %q, want the restarted owner %s", got, owner.ID)
	}
	if !bytes.Equal(body, cachedBody) {
		t.Errorf("post-rejoin response bytes differ from the original cached response")
	}
}

// TestClusterDrainHandoffWarmHitRate: after a drain handoff, at least 90%
// of the drained node's cache entries answer as hits on their new owners.
// Replication is disabled to prove the handoff alone carries the cache.
func TestClusterDrainHandoffWarmHitRate(t *testing.T) {
	tc := startCluster(t, 3, Options{PeerToken: "s3cret", Replicas: -1})

	full := tc.nodes[0].full
	var reqs []service.RunRequest
	var keys []cache.Key
	for n := int64(8); len(reqs) < 10 && n < 400; n += 4 {
		req := testRunReq
		req.Workload.N = n
		k, err := service.RunKey(req)
		if err != nil {
			continue
		}
		if full.Owner(k).ID == "n0" {
			reqs = append(reqs, req)
			keys = append(keys, k)
		}
	}
	if len(reqs) < 10 {
		t.Fatalf("found only %d keys owned by n0; enlarge the search range", len(reqs))
	}

	for i, req := range reqs {
		resp, body := postNode(t, tc.addrs[0], "/run", req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fill %d: %d %s", i, resp.StatusCode, body)
		}
	}

	rep := tc.nodes[0].DrainHandoff(context.Background())
	if rep.Entries < len(reqs) {
		t.Fatalf("handoff delivered %d entries, want >= %d (report %+v)", rep.Entries, len(reqs), rep)
	}
	if rep.FailedBatches != 0 {
		t.Errorf("handoff lost %d batches with all peers up", rep.FailedBatches)
	}

	// The departure announcement demoted n0 everywhere (drain cause).
	for _, i := range []int{1, 2} {
		if got := tc.nodes[i].PeerState("n0"); got != "demoted" {
			t.Errorf("%s holds n0 %q after its departure announcement, want demoted", tc.nodes[i].self.ID, got)
		}
	}

	rest, err := full.Without("n0")
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, req := range reqs {
		newOwnerID := rest.Owner(keys[i]).ID
		idx := -1
		for j, n := range tc.nodes {
			if n.self.ID == newOwnerID {
				idx = j
			}
		}
		resp, body := postNode(t, tc.addrs[idx], "/run", req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-handoff fetch %d: %d %s", i, resp.StatusCode, body)
		}
		var rr service.RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Cached {
			hits++
		}
	}
	if hits*10 < len(reqs)*9 {
		t.Errorf("warm hit rate %d/%d after handoff, want >= 90%%", hits, len(reqs))
	}
	recv := tc.nodes[1].Membership().HandoffRecvEntries + tc.nodes[2].Membership().HandoffRecvEntries
	if recv < int64(len(reqs)) {
		t.Errorf("survivors imported %d entries, want >= %d", recv, len(reqs))
	}
}

// TestProbeStateMachine drives the suspect→confirm→rejoin transitions
// against a stub peer whose /healthz behaviour the test switches.
func TestProbeStateMachine(t *testing.T) {
	var identity sync.Map // "node" -> string served as the peer's identity
	identity.Store("node", "b")
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, _ := identity.Load("node")
		json.NewEncoder(w).Encode(map[string]any{"node": id})
	}))
	defer stub.Close()

	members := []Member{{ID: "a", Addr: "http://127.0.0.1:1"}, {ID: "b", Addr: stub.URL}}
	n := quietNode(t, Options{Self: "a", SuspectAfter: 2, RejoinAfter: 2, DemoteCooldown: -1, Replicas: -1}, members)
	b := members[1]

	if got := n.PeerState("b"); got != "alive" {
		t.Fatalf("initial state %q, want alive", got)
	}

	// Identity mismatch is a probe failure: an address answering as the
	// wrong node must not keep the member alive.
	identity.Store("node", "imposter")
	n.probeOne(b)
	if got := n.PeerState("b"); got != "suspect" {
		t.Fatalf("after 1 failure: %q, want suspect", got)
	}
	if n.Ring().Size() != 2 {
		t.Fatal("suspicion alone changed the live ring")
	}
	n.probeOne(b)
	if got := n.PeerState("b"); got != "demoted" {
		t.Fatalf("after SuspectAfter failures: %q, want demoted", got)
	}
	if n.Ring().Size() != 1 {
		t.Fatal("demotion did not shrink the live ring")
	}

	// Recovery: RejoinAfter consecutive successes readmit.
	identity.Store("node", "b")
	n.probeOne(b)
	if got := n.PeerState("b"); got != "demoted" {
		t.Fatalf("one success readmitted early: %q", got)
	}
	n.probeOne(b)
	if got := n.PeerState("b"); got != "alive" {
		t.Fatalf("after RejoinAfter successes: %q, want alive", got)
	}
	if n.Ring().Size() != 2 {
		t.Fatal("readmission did not restore the live ring")
	}
	ms := n.Membership()
	if ms.Probes != 4 || ms.ProbeFailures != 2 || ms.Demotions != 1 || ms.Rejoins != 1 {
		t.Errorf("counters %+v, want probes=4 failures=2 demotions=1 rejoins=1", ms)
	}

	// A suspect peer that recovers before confirmation resets cleanly.
	identity.Store("node", "nobody")
	n.probeOne(b)
	identity.Store("node", "b")
	n.probeOne(b)
	if got := n.PeerState("b"); got != "alive" {
		t.Fatalf("suspect that recovered: %q, want alive", got)
	}
}

// TestDemoteCooldownAndUnknownID: transport-cause demotions inside the
// readmit cooldown are suppressed (no ring flap), deliberate causes bypass
// it, and demoting an ID outside the membership is a counted no-op.
func TestDemoteCooldownAndUnknownID(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"node": "b"})
	}))
	defer stub.Close()

	members := []Member{{ID: "a", Addr: "http://127.0.0.1:1"}, {ID: "b", Addr: stub.URL}}
	n := quietNode(t, Options{Self: "a", RejoinAfter: 1, DemoteCooldown: time.Hour, Replicas: -1}, members)
	b := members[1]

	// First transport demotion (no prior readmit): not cooldown-gated.
	n.MarkDead("b")
	if got := n.PeerState("b"); got != "demoted" {
		t.Fatalf("first MarkDead: %q, want demoted", got)
	}

	// Readmit via a probe success, starting the cooldown window.
	n.probeOne(b)
	if got := n.PeerState("b"); got != "alive" {
		t.Fatalf("after readmit probe: %q, want alive", got)
	}

	// A transport error inside the window must not flap the ring.
	n.MarkDead("b")
	if got := n.PeerState("b"); got != "alive" {
		t.Fatalf("transport demotion inside cooldown: %q, want alive (suppressed)", got)
	}
	if ms := n.Membership(); ms.Demotions != 1 {
		t.Errorf("demotions = %d after suppressed flap, want 1", ms.Demotions)
	}

	// A drain announcement is authoritative and bypasses the cooldown.
	n.demote("b", causeDrain)
	if got := n.PeerState("b"); got != "demoted" {
		t.Fatalf("drain demotion inside cooldown: %q, want demoted", got)
	}

	// Unknown IDs: counted no-op, live ring untouched.
	before := n.Ring().Version()
	n.MarkDead("zebra")
	if got := n.Ring().Version(); got != before {
		t.Error("unknown-ID demotion changed the ring")
	}
	if ms := n.Membership(); ms.UnknownDemotions != 1 {
		t.Errorf("unknownDemotions = %d, want 1", ms.UnknownDemotions)
	}
	if got := n.PeerState("zebra"); got != "" {
		t.Errorf("PeerState(zebra) = %q, want empty", got)
	}
}

// TestGossipConvergesOnIntersection: a probed peer's healthz view demotes
// members it reports not-alive (never itself, never this node), and a
// differing ring version is counted as skew — the mechanism that converges
// two disagreeing nodes onto the intersection of their live sets.
func TestGossipConvergesOnIntersection(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"node":        "b",
			"ringVersion": "somewhere-else",
			"peers": []map[string]any{
				{"id": "a", "alive": false}, // self: must be ignored
				{"id": "b", "alive": false}, // the reporter: firsthand probe wins
				{"id": "c", "alive": false}, // absorbed
			},
		})
	}))
	defer stub.Close()

	members := []Member{
		{ID: "a", Addr: "http://127.0.0.1:1"},
		{ID: "b", Addr: stub.URL},
		{ID: "c", Addr: "http://127.0.0.1:2"},
	}
	n := quietNode(t, Options{Self: "a", DemoteCooldown: -1, Replicas: -1}, members)

	n.probeOne(members[1])
	if got := n.PeerState("b"); got != "alive" {
		t.Errorf("reporting peer = %q, want alive (its own probe succeeded)", got)
	}
	if got := n.PeerState("c"); got != "demoted" {
		t.Errorf("gossiped-dead peer = %q, want demoted", got)
	}
	if ms := n.Membership(); ms.RingSkews < 1 {
		t.Errorf("ringSkews = %d, want >= 1 (versions differed)", ms.RingSkews)
	}
	if n.Ring().Size() != 2 {
		t.Errorf("live ring size = %d, want 2 (a, b)", n.Ring().Size())
	}
}

// TestHealthzDegradedOnMajorityDemoted: with more than half of the
// configured peers demoted, /healthz flips to 503 with a degraded marker
// so load balancers route away from a minority partition.
func TestHealthzDegradedOnMajorityDemoted(t *testing.T) {
	tc := startCluster(t, 3, Options{Replicas: -1})

	get := func() (int, map[string]any) {
		resp, err := http.Get(tc.addrs[0] + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("healthz decode: %v (%s)", err, body)
		}
		return resp.StatusCode, m
	}

	if code, m := get(); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("healthy node: %d %v, want 200 ok", code, m)
	}

	tc.nodes[0].demote("n1", causeProbe)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("1 of 2 peers demoted is not a majority: got %d, want 200", code)
	}

	tc.nodes[0].demote("n2", causeProbe)
	code, m := get()
	if code != http.StatusServiceUnavailable || m["status"] != "degraded" {
		t.Fatalf("majority demoted: %d %v, want 503 degraded", code, m)
	}
	if reason, _ := m["reason"].(string); reason == "" {
		t.Error("degraded healthz carries no reason")
	}

	resp, err := http.Get(tc.addrs[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "dsserve_degraded 1") {
		t.Error("metrics missing dsserve_degraded 1")
	}
}

// TestClusterMembershipRaces hammers the ring pointer from every direction
// the production paths do — demotions, probe outcomes swapping it back,
// lock-free readers — for the race detector.
func TestClusterMembershipRaces(t *testing.T) {
	members := []Member{
		{ID: "a", Addr: "http://127.0.0.1:1"},
		{ID: "b", Addr: "http://127.0.0.1:2"},
		{ID: "c", Addr: "http://127.0.0.1:3"},
	}
	n := quietNode(t, Options{Self: "a", DemoteCooldown: -1, RejoinAfter: 1, Replicas: -1}, members)

	key, err := service.RunKey(testRunReq)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, id := range []string{"b", "c"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n.MarkDead(id)
				n.observeProbe(id, true) // readmit (RejoinAfter 1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			r := n.Ring()
			r.Owner(key)
			r.SuccessorsPos(key.Ring(), 2)
			n.healthInfo()
			n.degraded()
			n.metricsAppend(io.Discard)
		}
	}()
	wg.Wait()

	// Converge: both peers readmitted, full ring restored.
	n.observeProbe("b", true)
	n.observeProbe("c", true)
	if n.Ring().Size() != 3 {
		t.Errorf("final ring size %d, want 3", n.Ring().Size())
	}
}
