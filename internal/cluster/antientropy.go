package cluster

// Anti-entropy re-replication.
//
// K-successor replication pushes each fresh cache fill to the key's
// current successors — but "current" decays: every demotion, rejoin or
// drain changes successor sets, and entries filled before the transition
// are left wherever the old ring put them. The anti-entropy scan closes
// that gap. On every live-ring transition (kicked from rebuildRingLocked)
// and on a slow periodic timer, each node walks its owned keys, asks each
// live successor which of those keys it already holds (the batched
// /internal/has endpoint — measuring real under-replication rather than
// trusting local bookkeeping that a peer restart would silently
// invalidate), and enqueues the missing copies on the existing bounded
// replication queue. Under-replicated keys thus converge back to
// Replicas copies after any demotion/rejoin cycle without waiting for
// fresh fills.
//
// Only the live-ring owner repairs a key, so each repair has exactly one
// driver; non-owners hold replicas but never push them. The scan is
// best-effort by design: an unreachable successor makes its keys
// unverifiable (counted, not repaired — the prober owns liveness), and
// the next scan retries.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
)

// hasBatch caps the keys per /internal/has query.
const hasBatch = 128

// aeKickDelay debounces transition-kicked scans: ring transitions arrive
// in bursts (gossip demoting two peers back to back), and one scan after
// the burst beats three during it.
const aeKickDelay = 50 * time.Millisecond

type hasRequest struct {
	Keys []string `json:"keys"`
}

type hasResponse struct {
	Has []bool `json:"has"`
}

// handleHas answers which of the asked keys the local cache holds —
// peer-internal, used by the anti-entropy scan to measure real replica
// presence instead of trusting stale bookkeeping.
func (n *Node) handleHas(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		if isBodyTooLarge(err) {
			n.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("cluster: has query exceeds %d bytes", maxBody))
			return
		}
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read has query: %w", err))
		return
	}
	var req hasRequest
	if err := strictUnmarshal(body, &req); err != nil {
		n.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: decode has query: %w", err))
		return
	}
	resp := hasResponse{Has: make([]bool, len(req.Keys))}
	for i, ks := range req.Keys {
		k, err := cache.ParseKey(ks)
		resp.Has[i] = err == nil && n.srv.CacheHas(k)
	}
	n.writeJSON(w, resp)
}

// antiEntropyLoop runs AntiEntropyScan on ring-transition kicks and on the
// periodic timer until Stop.
func (n *Node) antiEntropyLoop() {
	defer n.wg.Done()
	t := time.NewTimer(n.opts.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.aeKick:
			select {
			case <-n.stopCh:
				return
			case <-time.After(aeKickDelay):
			}
			// Coalesce any kick that arrived during the debounce window.
			select {
			case <-n.aeKick:
			default:
			}
		case <-t.C:
		}
		n.AntiEntropyScan(context.Background())
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(n.opts.AntiEntropyInterval)
	}
}

// AntiEntropyReport summarizes one scan.
type AntiEntropyReport struct {
	Owned           int // keys this node owns on the live ring
	Underreplicated int // owned keys missing at least one successor copy
	Enqueued        int // targeted replica pushes enqueued
	Unverifiable    int // (key, successor) pairs whose presence could not be measured
}

// AntiEntropyScan walks the owned keys once, measures replica presence on
// each live successor, and enqueues targeted pushes for the missing
// copies. It updates the dsserve_underreplicated_keys gauge to the count
// it found (before the enqueued pushes drain — the next scan is the one
// that reports convergence).
func (n *Node) AntiEntropyScan(ctx context.Context) AntiEntropyReport {
	var rep AntiEntropyReport
	live := n.ring.Load()
	if n.opts.Replicas <= 0 || live.Size() <= 1 {
		n.underreplicated.Store(0)
		n.antiScans.Add(1)
		return rep
	}

	var owned []cache.Key
	n.srv.RangeCacheKeys(func(k cache.Key) {
		if live.Owner(k).ID == n.self.ID {
			owned = append(owned, k)
		}
	})
	rep.Owned = len(owned)

	// Group the owned keys by the successor that should hold them.
	bySucc := make(map[string][]cache.Key)
	for _, k := range owned {
		for _, m := range live.Successors(k, n.opts.Replicas) {
			if m.ID != n.self.ID {
				bySucc[m.ID] = append(bySucc[m.ID], k)
			}
		}
	}
	succs := make([]string, 0, len(bySucc))
	for id := range bySucc {
		succs = append(succs, id)
	}
	sort.Strings(succs)

	under := make(map[cache.Key]bool)
	for _, id := range succs {
		keys := bySucc[id]
		cl := n.clients[id]
		if cl == nil {
			rep.Unverifiable += len(keys)
			continue
		}
		for start := 0; start < len(keys); start += hasBatch {
			select {
			case <-n.stopCh:
				return rep
			case <-ctx.Done():
				return rep
			default:
			}
			end := min(start+hasBatch, len(keys))
			batch := keys[start:end]
			req := hasRequest{Keys: make([]string, len(batch))}
			for i, k := range batch {
				req.Keys[i] = k.String()
			}
			bctx, cancel := context.WithTimeout(ctx, replPushTimeout)
			var resp hasResponse
			err := cl.PostJSON(bctx, "/internal/has", req, &resp)
			cancel()
			if err != nil || len(resp.Has) != len(batch) {
				// The prober owns liveness; an unanswerable successor just
				// leaves its keys unverified until the next scan.
				rep.Unverifiable += len(keys) - start
				n.log.Debug("cluster: anti-entropy has query failed", "peer", id, "err", err)
				break
			}
			for i, has := range resp.Has {
				if has {
					continue
				}
				k := batch[i]
				under[k] = true
				if e, ok := n.srv.ExportCacheEntry(k); ok {
					if n.enqueueReplica(replJob{key: k, entry: e, only: id, antientropy: true}) {
						rep.Enqueued++
					}
				}
			}
		}
	}

	rep.Underreplicated = len(under)
	n.underreplicated.Store(int64(rep.Underreplicated))
	n.antiScans.Add(1)
	if rep.Underreplicated > 0 {
		n.log.Info("cluster: anti-entropy scan found under-replicated keys",
			"owned", rep.Owned, "underreplicated", rep.Underreplicated,
			"enqueued", rep.Enqueued, "unverifiable", rep.Unverifiable)
	}
	return rep
}

// AntiEntropyStats snapshots the scan counters (tests and probes).
func (n *Node) AntiEntropyStats() (scans, pushes, underreplicated int64) {
	return n.antiScans.Load(), n.antiPushes.Load(), n.underreplicated.Load()
}
