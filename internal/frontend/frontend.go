// Package frontend lowers a restricted subset of Go source into the
// repository's loop intermediate representation, playing the role of the
// concurrentizing compiler front end the paper assumes (section 5): it
// recognizes canonical counted for-loop nests over integer slices, checks
// every body construct for lowerability, and produces executable workloads
// (loop.Nest + statement semantics) that the dependence analysis,
// synchronization code generators, and verifier consume unchanged.
//
// The accepted subset mirrors exactly what the dependence analysis can
// reason about:
//
//   - loop headers of the form `for i := lo; i < hi; i += s` (or `<=`,
//     `i++`) with integer-constant bounds and a positive constant stride;
//   - perfectly nested loops (a non-innermost body is exactly one for);
//   - body statements that assign an array element or a loop-local scalar
//     from an expression over integer literals, loop indices, loop-local
//     scalars and array reads, using only +, - and *;
//   - array subscripts that are affine in the loop indices;
//   - two-armed conditionals on a loop index (`i%2 == 1`, `i <= 5`).
//
// Everything else is rejected with a structured Diagnostic carrying the
// source position, a stable machine-readable code, and the offending
// expression. Rejection is per loop nest: one bad statement rejects its
// nest, not the whole file, so a file can yield both lowered loops and
// diagnostics.
//
// Strides greater than one are normalized away: level k's iterations are
// renumbered 0..count-1 and the (scale, offset) pair is folded into every
// affine subscript and index-value expression, so the rest of the system
// only ever sees step-1 nests. Stride-1 loops keep their original bounds,
// which makes a Go function and its .do-file twin lower to byte-identical
// canonical forms (see package cache).
package frontend

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"github.com/csrd-repro/datasync/internal/codegen"
)

// Diagnostic codes. These are stable identifiers: tests pin them, the
// /compile endpoint and dsgo emit them in JSON, and rejection fixtures
// under testdata/go assert them. Add new codes rather than renaming.
const (
	// CodeSyntax: the file is not parseable Go.
	CodeSyntax = "go-syntax"
	// CodeType: the type checker could not type a construct the lowering
	// depends on (inside a candidate nest).
	CodeType = "type-error"
	// CodeLoopHeader: the for statement is not of the canonical counted
	// form `for i := lo; i < hi; i += s`.
	CodeLoopHeader = "non-canonical-loop"
	// CodeSymbolicBound: a loop bound or stride is not an integer constant.
	CodeSymbolicBound = "symbolic-bound"
	// CodeEmptyRange: the loop provably executes zero iterations.
	CodeEmptyRange = "empty-range"
	// CodeEmptyBody: the innermost loop body has no statements.
	CodeEmptyBody = "empty-body"
	// CodeImperfectNest: an inner loop appears alongside other statements.
	CodeImperfectNest = "imperfect-nest"
	// CodeStmt: a body statement kind outside the lowerable subset.
	CodeStmt = "unsupported-statement"
	// CodeExpr: an expression form outside the lowerable subset.
	CodeExpr = "unsupported-expression"
	// CodeCall: a function call (including conversions) in the body.
	CodeCall = "call-expression"
	// CodeEscape: a reference to a scalar declared outside the nest; its
	// value cannot be modeled by the iteration-local semantics.
	CodeEscape = "escaping-reference"
	// CodeCondition: an if condition outside the supported index forms.
	CodeCondition = "unsupported-condition"
	// CodeIndexAssign: the body writes a loop index variable.
	CodeIndexAssign = "loop-index-assignment"
	// CodeNonAffine: an array subscript that is not affine in the indices.
	CodeNonAffine = "non-affine-subscript"
	// CodeDims: an array reference with more than two subscripts, or an
	// indexing depth that does not match the array's type.
	CodeDims = "subscript-dims"
	// CodeNonInteger: an array whose element type is not int or int64.
	CodeNonInteger = "non-integer-element"
	// CodeArrayShape: one array used with inconsistent dimensionality, or
	// two distinct arrays whose names collide case-insensitively.
	CodeArrayShape = "array-shape-mismatch"
)

// Position is a source location. It is a trimmed token.Position with
// stable JSON field names for the service and CLI outputs.
type Position struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (p Position) String() string {
	if p.Line == 0 {
		return p.File
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Diagnostic is one structured rejection: where, why (a stable code plus a
// human-readable message), and the offending source expression when one
// exists.
type Diagnostic struct {
	Pos     Position `json:"pos"`
	Code    string   `json:"code"`
	Message string   `json:"message"`
	// Expr is the offending expression or statement, rendered from the AST.
	Expr string `json:"expr,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Code, d.Message)
	if d.Expr != "" {
		s += fmt.Sprintf(" (in `%s`)", d.Expr)
	}
	return s
}

// Error makes a Diagnostic usable as an error value.
func (d Diagnostic) Error() string { return d.String() }

// Loop is one accepted, fully lowered loop nest.
type Loop struct {
	// Func is the enclosing Go function's name; it becomes the workload
	// name (a function named dsl twins lang.Parse output exactly).
	Func string `json:"func"`
	// Pos is the position of the nest's outermost for statement.
	Pos Position `json:"pos"`
	// Workload is the executable lowered form.
	Workload *codegen.Workload `json:"-"`
}

// Result is the outcome of lowering one file: the accepted nests and a
// diagnostic per rejected candidate. Both can be non-empty at once.
type Result struct {
	Loops    []*Loop      `json:"loops"`
	Rejected []Diagnostic `json:"rejected"`
}

// LowerFile reads and lowers a Go source file. The returned error covers
// only I/O; analysis failures are reported in Result.Rejected.
func LowerFile(path string) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Lower(filepath.Base(path), src), nil
}

// Lower parses, type-checks and lowers Go source. Every top-level for
// statement in every function body is a candidate nest; each candidate
// either becomes a Loop or contributes one Diagnostic. Lower never panics
// on any input (the FuzzLowerGo fuzzer enforces this).
func Lower(filename string, src []byte) *Result {
	res := &Result{}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		res.Rejected = append(res.Rejected, syntaxDiag(filename, err))
		return res
	}

	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	// Soft type checking: collect errors and keep going. A file with no
	// imports and ordinary code type-checks fully; errors that land inside
	// a candidate nest reject that nest, errors elsewhere (scaffolding,
	// unresolvable imports under the nil importer) are ignored.
	var typeErrs []types.Error
	conf := types.Config{Error: func(err error) {
		if te, ok := err.(types.Error); ok {
			typeErrs = append(typeErrs, te)
		}
	}}
	_, _ = conf.Check(file.Name.Name, fset, []*ast.File{file}, info)

	lw := &lowerer{fset: fset, info: info, typeErrs: typeErrs}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if ok && fn.Body != nil {
			lw.lowerFunc(res, fn)
		}
	}
	return res
}

// syntaxDiag converts a parse failure into a positioned diagnostic (the
// first error of the list; the rest are usually cascades).
func syntaxDiag(filename string, err error) Diagnostic {
	if el, ok := err.(scanner.ErrorList); ok && len(el) > 0 {
		e := el[0]
		return Diagnostic{
			Pos:     Position{File: e.Pos.Filename, Line: e.Pos.Line, Col: e.Pos.Column},
			Code:    CodeSyntax,
			Message: e.Msg,
		}
	}
	return Diagnostic{Pos: Position{File: filename}, Code: CodeSyntax, Message: err.Error()}
}
