package frontend

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
)

// ---- Executable expression nodes (mirrors package lang's interpreter) ----

type evalEnv struct {
	idx    []int64
	in     []int64
	locals map[string]int64
}

type evalNode interface{ eval(e *evalEnv) int64 }

type numNode int64

func (n numNode) eval(*evalEnv) int64 { return int64(n) }

// idxNode yields the Go-source value of a loop variable: the normalized
// index scaled back through the level's stride folding.
type idxNode struct {
	k             int
	scale, offset int64
}

func (n idxNode) eval(e *evalEnv) int64 { return n.offset + n.scale*e.idx[n.k] }

type localNode string

func (l localNode) eval(e *evalEnv) int64 { return e.locals[string(l)] }

// readNode yields the statement's slot-th array read (bound by codegen).
type readNode int

func (r readNode) eval(e *evalEnv) int64 { return e.in[int(r)] }

type binNode struct {
	op   token.Token
	l, r evalNode
}

func (b binNode) eval(e *evalEnv) int64 {
	lv, rv := b.l.eval(e), b.r.eval(e)
	switch b.op {
	case token.ADD:
		return lv + rv
	case token.SUB:
		return lv - rv
	default:
		return lv * rv
	}
}

// ---- Expression compilation ----

// compileExpr compiles a value expression: literals, loop indices,
// iteration-local scalars, affine array reads, and +, -, * over them.
// Array reads claim read slots on st in evaluation order.
func (nl *nest) compileExpr(e ast.Expr, st *deps.Stmt) (evalNode, *Diagnostic) {
	lw := nl.lw
	switch v := e.(type) {
	case *ast.ParenExpr:
		return nl.compileExpr(v.X, st)
	case *ast.BasicLit:
		if c, ok := nl.constVal(v); ok {
			return numNode(c), nil
		}
		return nil, lw.diag(v.Pos(), CodeExpr, v, "only integer literals can be lowered")
	case *ast.UnaryExpr:
		if v.Op != token.SUB {
			return nil, lw.diag(v.Pos(), CodeExpr, v, "unary operator %s is outside the lowerable subset", v.Op)
		}
		inner, d := nl.compileExpr(v.X, st)
		if d != nil {
			return nil, d
		}
		return binNode{op: token.SUB, l: numNode(0), r: inner}, nil
	case *ast.Ident:
		if k := nl.levelOf(v); k >= 0 {
			lv := nl.levels[k]
			return idxNode{k: k, scale: lv.scale, offset: lv.offset}, nil
		}
		// An iteration-local scalar; anything declared outside the nest is
		// an escaping value the iteration semantics cannot model.
		obj := nl.lw.info.Uses[v]
		if obj == nil || obj.Pos() < nl.span[0] || obj.Pos() >= nl.span[1] {
			return nil, lw.diag(v.Pos(), CodeEscape, v,
				"scalar %s is declared outside the loop nest", v.Name)
		}
		return localNode(v.Name), nil
	case *ast.IndexExpr:
		ref, d := nl.refOf(v, st)
		if d != nil {
			return nil, d
		}
		slot := len(st.Reads)
		st.Reads = append(st.Reads, ref)
		return readNode(slot), nil
	case *ast.BinaryExpr:
		if v.Op != token.ADD && v.Op != token.SUB && v.Op != token.MUL {
			return nil, lw.diag(v.OpPos, CodeExpr, v, "operator %s is outside the lowerable subset (+, -, * only)", v.Op)
		}
		l, d := nl.compileExpr(v.X, st)
		if d != nil {
			return nil, d
		}
		r, d := nl.compileExpr(v.Y, st)
		if d != nil {
			return nil, d
		}
		return binNode{op: v.Op, l: l, r: r}, nil
	case *ast.CallExpr:
		return nil, lw.diag(v.Pos(), CodeCall, v, "function calls (and conversions) cannot be lowered")
	default:
		return nil, lw.diag(e.Pos(), CodeExpr, e, "expression kind %T is outside the lowerable subset", e)
	}
}

// ---- Array references ----

// refOf lowers `a[x]` or `a[x][y]` into a canonical reference: upper-cased
// array name, affine subscripts with stride folding applied. st is used
// only for diagnostics context; slots are claimed by the caller.
func (nl *nest) refOf(e *ast.IndexExpr, st *deps.Stmt) (deps.Ref, *Diagnostic) {
	lw := nl.lw
	// Unwind the subscript chain: a[x][y] parses as (a[x])[y].
	var subs []ast.Expr
	base := ast.Expr(e)
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			break
		}
		subs = append([]ast.Expr{ix.Index}, subs...)
		base = ix.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return deps.Ref{}, lw.diag(base.Pos(), CodeExpr, e, "indexed value must be a named array")
	}
	if len(subs) > 2 {
		return deps.Ref{}, lw.diag(e.Pos(), CodeDims, e, "array %s has %d subscripts; at most 2 supported", id.Name, len(subs))
	}
	if d := nl.checkArray(id, len(subs), e); d != nil {
		return deps.Ref{}, d
	}
	ref := deps.Ref{Array: strings.ToUpper(id.Name)}
	for _, sub := range subs {
		a, d := nl.affineOf(sub)
		if d != nil {
			return deps.Ref{}, d
		}
		ref.Index = append(ref.Index, a)
	}
	return ref, nil
}

// checkArray validates the indexed identifier: it must name a slice or
// array with integer elements at exactly the indexing depth used, used
// consistently across the nest, with no case-insensitive name collisions
// (canonical names are upper-cased).
func (nl *nest) checkArray(id *ast.Ident, dims int, at ast.Expr) *Diagnostic {
	lw := nl.lw
	obj := lw.info.Uses[id]
	if obj == nil {
		return lw.diag(id.Pos(), CodeType, at, "cannot resolve array %s", id.Name)
	}
	t := obj.Type()
	for d := 0; d < dims; d++ {
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return lw.diag(id.Pos(), CodeDims, at, "%s is indexed %d deep but has type %s", id.Name, dims, obj.Type())
		}
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || (b.Kind() != types.Int && b.Kind() != types.Int64) {
		return lw.diag(id.Pos(), CodeNonInteger, at, "array %s has element type %s; only int and int64 are lowerable", id.Name, t)
	}
	if _, deeper := t.Underlying().(*types.Slice); deeper {
		return lw.diag(id.Pos(), CodeDims, at, "%s is deeper than its %d subscripts", id.Name, dims)
	}
	name := strings.ToUpper(id.Name)
	if prev, ok := nl.arrays[name]; ok {
		if prev.obj != obj {
			return lw.diag(id.Pos(), CodeArrayShape, at, "arrays %q and another identifier collide case-insensitively as %s", id.Name, name)
		}
		if prev.dims != dims {
			return lw.diag(id.Pos(), CodeArrayShape, at, "array %s is used with both %d and %d subscripts", id.Name, prev.dims, dims)
		}
	} else {
		nl.arrays[name] = arrayInfo{obj: obj, dims: dims}
	}
	return nil
}

// ---- Affine subscripts ----

// affineOf compiles a subscript into an affine expression over the
// normalized loop indices, folding each level's (scale, offset) so that
// strided source loops produce step-1 IR.
func (nl *nest) affineOf(e ast.Expr) (expr.Affine, *Diagnostic) {
	a, ok := nl.affine(e)
	if !ok {
		return expr.Affine{}, nl.lw.diag(e.Pos(), CodeNonAffine, e,
			"subscript is not affine in the loop indices")
	}
	return a, nil
}

func (nl *nest) affine(e ast.Expr) (expr.Affine, bool) {
	depth := len(nl.levels)
	if c, ok := nl.constVal(e); ok {
		return expr.Const(depth, c), true
	}
	switch v := e.(type) {
	case *ast.ParenExpr:
		return nl.affine(v.X)
	case *ast.Ident:
		if k := nl.levelOf(v); k >= 0 {
			lv := nl.levels[k]
			return expr.Scaled(depth, k, lv.scale, lv.offset), true
		}
		return expr.Affine{}, false
	case *ast.UnaryExpr:
		if v.Op != token.SUB {
			return expr.Affine{}, false
		}
		inner, ok := nl.affine(v.X)
		if !ok {
			return expr.Affine{}, false
		}
		return expr.Const(depth, 0).Sub(inner), true
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB:
			l, ok := nl.affine(v.X)
			if !ok {
				return expr.Affine{}, false
			}
			r, ok := nl.affine(v.Y)
			if !ok {
				return expr.Affine{}, false
			}
			if v.Op == token.ADD {
				return l.Add(r), true
			}
			return l.Sub(r), true
		case token.MUL:
			// One side must be constant; c*affine stays affine.
			if c, ok := nl.constVal(v.X); ok {
				if r, ok := nl.affine(v.Y); ok {
					return mulAffine(r, c), true
				}
				return expr.Affine{}, false
			}
			if c, ok := nl.constVal(v.Y); ok {
				if l, ok := nl.affine(v.X); ok {
					return mulAffine(l, c), true
				}
			}
			return expr.Affine{}, false
		}
	}
	return expr.Affine{}, false
}

func mulAffine(a expr.Affine, c int64) expr.Affine {
	out := expr.Const(a.Arity(), a.Const*c)
	for k, coef := range a.Coef {
		out.Coef[k] = coef * c
	}
	return out
}

// ---- Integer constants ----

// constVal evaluates an expression to an integer constant. The type
// checker's constant folding is authoritative when available; a structural
// fallback handles literals when type information is incomplete.
func (nl *nest) constVal(e ast.Expr) (int64, bool) {
	if tv, ok := nl.lw.info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return v, true
			}
		}
		return 0, false
	}
	switch v := e.(type) {
	case *ast.ParenExpr:
		return nl.constVal(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			if c, ok := nl.constVal(v.X); ok {
				return -c, true
			}
		}
		return 0, false
	case *ast.BasicLit:
		if v.Kind != token.INT {
			return 0, false
		}
		c, err := strconv.ParseInt(v.Value, 0, 64)
		if err != nil {
			return 0, false
		}
		return c, true
	}
	return 0, false
}
