package frontend

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
)

// FuzzLowerGo feeds arbitrary source through the whole pipeline. The
// invariants: Lower never panics on any input, every accepted (small)
// workload runs on a checked machine configuration, and no accepted
// workload ever violates serial equivalence — a scheme is allowed to
// refuse a loop (unknown arcs, non-forward distances), but if it
// instruments one, the synchronization must be sufficient.
func FuzzLowerGo(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join(corpusDir, "*.go"))
	for _, fn := range files {
		if src, err := os.ReadFile(fn); err == nil {
			f.Add(string(src))
		}
	}
	f.Add("package p\nfunc f(a []int) {\n\tfor i := 1; i < 6; i++ {\n\t\ta[2*i] = a[i] + 1\n\t}\n}")
	f.Add("package p\nfunc f(a []int) {\n\tfor i := 0; i < 9; i += 3 {\n\t\tif i%2 == 0 {\n\t\t\ta[i]++\n\t\t}\n\t}\n}")

	f.Fuzz(func(t *testing.T, src string) {
		res := Lower("fuzz.go", []byte(src))
		for _, lp := range res.Loops {
			w := lp.Workload
			if w.Nest.Iterations() > 2_000 || hugeFootprint(w) {
				continue
			}
			cfg := sim.Config{Processors: 2, BusLatency: 1, MemLatency: 1, Modules: 2,
				SyncOpCost: 1, SchedOverhead: 1, MaxCycles: 1_000_000}
			if err := cfg.Check(); err != nil {
				t.Fatalf("lowered workload rejected by sim.Config.Check: %v", err)
			}
			_, err := codegen.Run(w, codegen.ProcessOriented{X: 2, Improved: true}, cfg)
			if err != nil && strings.Contains(err.Error(), "serial equivalence") {
				t.Fatalf("accepted loop violates serial equivalence: %v\nsource:\n%s", err, src)
			}
		}
	})
}

// hugeFootprint skips inputs whose affine subscripts reach far enough to
// allocate unreasonable arrays (the bounds come from the corner vectors,
// the same extrema lang.DefaultSetup uses).
func hugeFootprint(w *codegen.Workload) bool {
	const limit = 100_000
	corners := make([][]int64, 0, 1<<w.Nest.Depth())
	for mask := 0; mask < 1<<w.Nest.Depth(); mask++ {
		idx := make([]int64, w.Nest.Depth())
		for k, ix := range w.Nest.Indexes {
			if mask&(1<<k) != 0 {
				idx[k] = ix.Hi
			} else {
				idx[k] = ix.Lo
			}
		}
		corners = append(corners, idx)
	}
	for _, s := range w.Nest.Stmts() {
		for _, r := range s.Writes {
			for _, sub := range r.Index {
				for _, c := range corners {
					if v := sub.Eval(c); v > limit || v < -limit {
						return true
					}
				}
			}
		}
		for _, r := range s.Reads {
			for _, sub := range r.Index {
				for _, c := range corners {
					if v := sub.Eval(c); v > limit || v < -limit {
						return true
					}
				}
			}
		}
	}
	return false
}
