package frontend

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/lang"
	"github.com/csrd-repro/datasync/internal/loop"
)

// lowerer carries the per-file analysis state shared by all candidates.
type lowerer struct {
	fset     *token.FileSet
	info     *types.Info
	typeErrs []types.Error
}

func (lw *lowerer) pos(p token.Pos) Position {
	tp := lw.fset.Position(p)
	return Position{File: tp.Filename, Line: tp.Line, Col: tp.Column}
}

// diag builds a positioned diagnostic; node may be nil when no single
// offending expression exists.
func (lw *lowerer) diag(p token.Pos, code string, node ast.Node, format string, args ...any) *Diagnostic {
	d := &Diagnostic{Pos: lw.pos(p), Code: code, Message: fmt.Sprintf(format, args...)}
	if node != nil {
		d.Expr = render(node)
	}
	return d
}

// render formats an AST node back to source-like text for diagnostics.
func render(node ast.Node) string {
	if e, ok := node.(ast.Expr); ok {
		return types.ExprString(e)
	}
	switch s := node.(type) {
	case *ast.AssignStmt:
		lhs := make([]string, len(s.Lhs))
		for i, e := range s.Lhs {
			lhs[i] = types.ExprString(e)
		}
		rhs := make([]string, len(s.Rhs))
		for i, e := range s.Rhs {
			rhs[i] = types.ExprString(e)
		}
		return strings.Join(lhs, ", ") + " " + s.Tok.String() + " " + strings.Join(rhs, ", ")
	case *ast.IncDecStmt:
		return types.ExprString(s.X) + s.Tok.String()
	case *ast.ExprStmt:
		return types.ExprString(s.X)
	case *ast.ForStmt:
		return "for { ... }"
	case *ast.RangeStmt:
		return "for range { ... }"
	}
	return fmt.Sprintf("%T", node)
}

// lowerFunc lowers every top-level for statement of one function body.
func (lw *lowerer) lowerFunc(res *Result, fn *ast.FuncDecl) {
	count := 0
	for _, stmt := range fn.Body.List {
		switch s := stmt.(type) {
		case *ast.ForStmt:
			count++
			name := fn.Name.Name
			if count > 1 {
				name = fmt.Sprintf("%s#%d", fn.Name.Name, count)
			}
			if w, d := lw.lowerNest(name, s); d != nil {
				res.Rejected = append(res.Rejected, *d)
			} else {
				res.Loops = append(res.Loops, &Loop{Func: fn.Name.Name, Pos: lw.pos(s.Pos()), Workload: w})
			}
		case *ast.RangeStmt:
			count++
			res.Rejected = append(res.Rejected, *lw.diag(s.Pos(), CodeLoopHeader, s,
				"range loops are not lowerable; use a counted for with constant bounds"))
		}
	}
}

// level is one loop of the nest under lowering. The normalized index runs
// over Index.Lo..Index.Hi step 1; the Go-source value of the variable at
// normalized value v is offset + scale*v (identity for stride-1 loops).
type level struct {
	obj           types.Object // the index variable's definition
	name          string       // upper-cased canonical name
	scale, offset int64
	index         loop.Index
}

// nest is the per-candidate lowering state.
type nest struct {
	lw     *lowerer
	levels []level
	span   [2]token.Pos // the outermost for statement's extent
	seq    int          // statement auto-naming counter (S1, S2, ...)
	sem    map[*deps.Stmt]codegen.Sem
	// arrays tracks each canonical array name's dimensionality and the
	// originating object, catching shape conflicts and case collisions.
	arrays map[string]arrayInfo
}

type arrayInfo struct {
	obj  types.Object
	dims int
}

// lowerNest turns one canonical for nest into a workload, or explains why
// it cannot.
func (lw *lowerer) lowerNest(name string, fs *ast.ForStmt) (*codegen.Workload, *Diagnostic) {
	nl := &nest{
		lw:     lw,
		span:   [2]token.Pos{fs.Pos(), fs.End()},
		sem:    make(map[*deps.Stmt]codegen.Sem),
		arrays: make(map[string]arrayInfo),
	}
	// A type error inside the candidate makes the object and type maps
	// unreliable for exactly the identifiers we need; reject up front with
	// the checker's own position.
	for _, te := range lw.typeErrs {
		if te.Pos >= fs.Pos() && te.Pos < fs.End() {
			return nil, lw.diag(te.Pos, CodeType, nil, "%s", te.Msg)
		}
	}

	// Collect the perfectly nested headers: descend while the body is
	// exactly one inner for statement.
	cur := fs
	for {
		if d := nl.pushHeader(cur); d != nil {
			return nil, d
		}
		if len(cur.Body.List) == 1 {
			if inner, ok := cur.Body.List[0].(*ast.ForStmt); ok {
				cur = inner
				continue
			}
		}
		break
	}
	if len(cur.Body.List) == 0 {
		return nil, lw.diag(cur.Body.Lbrace, CodeEmptyBody, nil, "innermost loop body has no statements")
	}
	body, d := nl.lowerBody(cur.Body.List)
	if d != nil {
		return nil, d
	}
	indexes := make([]loop.Index, len(nl.levels))
	for i, lv := range nl.levels {
		indexes[i] = lv.index
	}
	n, err := loop.New(indexes, body)
	if err != nil {
		// Unreachable by construction (ranges and arities are pre-checked),
		// but surface it as a diagnostic rather than a panic.
		return nil, lw.diag(fs.Pos(), CodeLoopHeader, nil, "%v", err)
	}
	return &codegen.Workload{Name: name, Nest: n, Sem: nl.sem, Setup: lang.DefaultSetup(n)}, nil
}

// pushHeader validates one `for i := lo; i < hi; i += s` header and
// appends its level.
func (nl *nest) pushHeader(fs *ast.ForStmt) *Diagnostic {
	lw := nl.lw
	if fs.Init == nil || fs.Cond == nil || fs.Post == nil {
		return lw.diag(fs.For, CodeLoopHeader, nil, "loop needs init, condition and post clauses (for i := lo; i < hi; i++)")
	}

	// Init: `i := <const>`.
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return lw.diag(fs.Init.Pos(), CodeLoopHeader, fs.Init, "loop must open with `i := <constant>`")
	}
	ident, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return lw.diag(init.Lhs[0].Pos(), CodeLoopHeader, init.Lhs[0], "loop variable must be a plain identifier")
	}
	lo, ok := nl.constVal(init.Rhs[0])
	if !ok {
		return lw.diag(init.Rhs[0].Pos(), CodeSymbolicBound, init.Rhs[0], "lower bound is not an integer constant")
	}
	obj := lw.info.Defs[ident]

	// Cond: `i < <const>` or `i <= <const>`.
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return lw.diag(fs.Cond.Pos(), CodeLoopHeader, fs.Cond, "loop condition must be `%s < hi` or `%s <= hi`", ident.Name, ident.Name)
	}
	if !nl.isLoopVar(cond.X, obj, ident.Name) {
		return lw.diag(cond.X.Pos(), CodeLoopHeader, fs.Cond, "loop condition must test the loop variable %s", ident.Name)
	}
	hi, ok := nl.constVal(cond.Y)
	if !ok {
		return lw.diag(cond.Y.Pos(), CodeSymbolicBound, cond.Y, "upper bound is not an integer constant")
	}
	if cond.Op == token.LSS {
		hi--
	}

	// Post: `i++` or `i += <positive const>`.
	stride := int64(1)
	switch post := fs.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok != token.INC || !nl.isLoopVar(post.X, obj, ident.Name) {
			return lw.diag(post.Pos(), CodeLoopHeader, post, "loop post must advance %s (`%s++` or `%s += s`)", ident.Name, ident.Name, ident.Name)
		}
	case *ast.AssignStmt:
		if post.Tok != token.ADD_ASSIGN || len(post.Lhs) != 1 || !nl.isLoopVar(post.Lhs[0], obj, ident.Name) {
			return lw.diag(post.Pos(), CodeLoopHeader, post, "loop post must advance %s (`%s++` or `%s += s`)", ident.Name, ident.Name, ident.Name)
		}
		s, ok := nl.constVal(post.Rhs[0])
		if !ok {
			return lw.diag(post.Rhs[0].Pos(), CodeSymbolicBound, post.Rhs[0], "stride is not an integer constant")
		}
		if s < 1 {
			return lw.diag(post.Pos(), CodeLoopHeader, post, "stride must be positive, got %d", s)
		}
		stride = s
	default:
		return lw.diag(fs.Post.Pos(), CodeLoopHeader, fs.Post, "loop post must be `%s++` or `%s += s`", ident.Name, ident.Name)
	}

	if hi < lo {
		return lw.diag(fs.For, CodeEmptyRange, fs.Cond, "loop over [%d,%d] executes zero iterations", lo, hi)
	}
	upper := strings.ToUpper(ident.Name)
	for _, lv := range nl.levels {
		if lv.name == upper {
			return lw.diag(ident.Pos(), CodeLoopHeader, nil, "index name %s collides with an enclosing loop (case-insensitive)", ident.Name)
		}
	}
	lv := level{obj: obj, name: upper, scale: 1, offset: 0, index: loop.Index{Name: upper, Lo: lo, Hi: hi}}
	if stride > 1 {
		// Renumber to 0..count-1 and fold i = lo + stride*k into the
		// subscripts and value expressions.
		count := (hi-lo)/stride + 1
		lv.scale, lv.offset = stride, lo
		lv.index = loop.Index{Name: upper, Lo: 0, Hi: count - 1}
	}
	nl.levels = append(nl.levels, lv)
	return nil
}

// isLoopVar reports whether e is the given loop variable. Object identity
// is authoritative; the name is a fallback when type information is
// incomplete.
func (nl *nest) isLoopVar(e ast.Expr, obj types.Object, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if use := nl.lw.info.Uses[id]; use != nil && obj != nil {
		return use == obj
	}
	return id.Name == name
}

// levelOf resolves an identifier to its nest level, or -1.
func (nl *nest) levelOf(id *ast.Ident) int {
	use := nl.lw.info.Uses[id]
	for k := range nl.levels {
		if use != nil && nl.levels[k].obj != nil {
			if use == nl.levels[k].obj {
				return k
			}
			continue
		}
		if strings.ToUpper(id.Name) == nl.levels[k].name {
			return k
		}
	}
	return -1
}

// lowerBody lowers a statement list into loop body nodes.
func (nl *nest) lowerBody(stmts []ast.Stmt) ([]loop.Node, *Diagnostic) {
	var nodes []loop.Node
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			st, d := nl.lowerAssign(s)
			if d != nil {
				return nil, d
			}
			nodes = append(nodes, loop.S(st))
		case *ast.IncDecStmt:
			st, d := nl.lowerIncDec(s)
			if d != nil {
				return nil, d
			}
			nodes = append(nodes, loop.S(st))
		case *ast.IfStmt:
			node, d := nl.lowerIf(s)
			if d != nil {
				return nil, d
			}
			nodes = append(nodes, node)
		case *ast.ForStmt, *ast.RangeStmt:
			return nil, nl.lw.diag(s.Pos(), CodeImperfectNest, s,
				"inner loops must perfectly nest (exactly one for per non-innermost body)")
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				return nil, nl.lw.diag(s.Pos(), CodeCall, call, "function calls cannot be lowered")
			}
			return nil, nl.lw.diag(s.Pos(), CodeStmt, s, "expression statements cannot be lowered")
		default:
			return nil, nl.lw.diag(s.Pos(), CodeStmt, s, "statement kind %T is outside the lowerable subset", s)
		}
	}
	return nodes, nil
}

// newStmt allocates the next auto-named statement (S1, S2, ... in textual
// order, then-arms before else-arms — the same order lang.Parse numbers).
func (nl *nest) newStmt() *deps.Stmt {
	nl.seq++
	return &deps.Stmt{Name: fmt.Sprintf("S%d", nl.seq), Cost: 1}
}

// lowerAssign lowers `lhs = rhs` (plus the +=, -=, *= and := forms) into a
// statement with semantics.
func (nl *nest) lowerAssign(as *ast.AssignStmt) (*deps.Stmt, *Diagnostic) {
	lw := nl.lw
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, lw.diag(as.Pos(), CodeStmt, as, "multi-value assignments cannot be lowered")
	}
	var op token.Token
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
	case token.ADD_ASSIGN:
		op = token.ADD
	case token.SUB_ASSIGN:
		op = token.SUB
	case token.MUL_ASSIGN:
		op = token.MUL
	default:
		return nil, lw.diag(as.Pos(), CodeStmt, as, "assignment operator %s is outside the lowerable subset", as.Tok)
	}

	st := nl.newStmt()
	var local string
	switch lhs := as.Lhs[0].(type) {
	case *ast.IndexExpr:
		ref, d := nl.refOf(lhs, st)
		if d != nil {
			return nil, d
		}
		st.Writes = []deps.Ref{ref}
	case *ast.Ident:
		if k := nl.levelOf(lhs); k >= 0 {
			return nil, lw.diag(lhs.Pos(), CodeIndexAssign, as, "the body must not write loop index %s", lhs.Name)
		}
		if d := nl.checkLocal(lhs, as.Tok == token.DEFINE); d != nil {
			return nil, d
		}
		local = lhs.Name
	default:
		return nil, lw.diag(as.Lhs[0].Pos(), CodeStmt, as, "assignment target must be an array element or a scalar")
	}

	rhs, d := nl.compileExpr(as.Rhs[0], st)
	if d != nil {
		return nil, d
	}
	if op != token.ILLEGAL {
		// Desugar `lhs op= rhs` to `lhs = lhs op rhs`; the extra read slot
		// is allocated after the RHS reads, matching the evaluation order.
		var lhsNode evalNode
		if len(st.Writes) > 0 {
			lhsNode = readNode(len(st.Reads))
			st.Reads = append(st.Reads, st.Writes[0])
		} else {
			lhsNode = localNode(local)
		}
		rhs = binNode{op: op, l: lhsNode, r: rhs}
	}
	nl.bindSem(st, local, rhs)
	return st, nil
}

// lowerIncDec lowers `a[i]++` / `t--` as the equivalent assignment.
func (nl *nest) lowerIncDec(s *ast.IncDecStmt) (*deps.Stmt, *Diagnostic) {
	op := token.ADD
	if s.Tok == token.DEC {
		op = token.SUB
	}
	st := nl.newStmt()
	var local string
	switch lhs := s.X.(type) {
	case *ast.IndexExpr:
		ref, d := nl.refOf(lhs, st)
		if d != nil {
			return nil, d
		}
		st.Writes = []deps.Ref{ref}
		st.Reads = append(st.Reads, ref)
		nl.bindSem(st, "", binNode{op: op, l: readNode(0), r: numNode(1)})
	case *ast.Ident:
		if k := nl.levelOf(lhs); k >= 0 {
			return nil, nl.lw.diag(lhs.Pos(), CodeIndexAssign, s, "the body must not write loop index %s", lhs.Name)
		}
		if d := nl.checkLocal(lhs, false); d != nil {
			return nil, d
		}
		local = lhs.Name
		nl.bindSem(st, local, binNode{op: op, l: localNode(local), r: numNode(1)})
	default:
		return nil, nl.lw.diag(s.Pos(), CodeStmt, s, "increment target must be an array element or a scalar")
	}
	return st, nil
}

// bindSem attaches the executable semantics: array statements return the
// written value, scalar statements update the iteration's locals.
func (nl *nest) bindSem(st *deps.Stmt, local string, rhs evalNode) {
	isWrite := len(st.Writes) > 0
	nl.sem[st] = func(idx []int64, in []int64, locals map[string]int64) []int64 {
		v := rhs.eval(&evalEnv{idx: idx, in: in, locals: locals})
		if isWrite {
			return []int64{v}
		}
		locals[local] = v
		return nil
	}
}

// checkLocal verifies that a scalar target is iteration-local: either
// freshly declared here (:=) or declared inside the nest. Writing a scalar
// that outlives the iteration would carry values across iterations, which
// the dependence analysis does not model.
func (nl *nest) checkLocal(id *ast.Ident, defines bool) *Diagnostic {
	if defines {
		return nil
	}
	obj := nl.lw.info.Uses[id]
	if obj == nil {
		obj = nl.lw.info.Defs[id]
	}
	if obj == nil || obj.Pos() < nl.span[0] || obj.Pos() >= nl.span[1] {
		return nl.lw.diag(id.Pos(), CodeEscape,
			id, "scalar %s is declared outside the loop nest; only iteration-local scalars can be lowered", id.Name)
	}
	return nil
}

// lowerIf lowers a two-armed conditional on a loop index.
func (nl *nest) lowerIf(s *ast.IfStmt) (loop.Node, *Diagnostic) {
	if s.Init != nil {
		return nil, nl.lw.diag(s.Init.Pos(), CodeCondition, s.Init, "if statements with init clauses cannot be lowered")
	}
	cond, name, d := nl.lowerCond(s.Cond)
	if d != nil {
		return nil, d
	}
	thenBody, d := nl.lowerBody(s.Body.List)
	if d != nil {
		return nil, d
	}
	var elseBody []loop.Node
	switch e := s.Else.(type) {
	case nil:
	case *ast.BlockStmt:
		elseBody, d = nl.lowerBody(e.List)
	case *ast.IfStmt:
		var node loop.Node
		node, d = nl.lowerIf(e)
		elseBody = []loop.Node{node}
	default:
		d = nl.lw.diag(s.Else.Pos(), CodeStmt, s.Else, "else form %T cannot be lowered", s.Else)
	}
	if d != nil {
		return nil, d
	}
	return loop.IfNode{Name: name, Cond: cond, Then: thenBody, Else: elseBody}, nil
}

// lowerCond recognizes the index conditions the IR names canonically:
// parity tests `i%2 == 1` (ODD) / `i%2 == 0` (EVEN) and comparisons of an
// index against a constant (`i <= 5` names itself "I<=5", as lang does).
func (nl *nest) lowerCond(e ast.Expr) (func(idx []int64) bool, string, *Diagnostic) {
	lw := nl.lw
	cmp, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return nil, "", lw.diag(e.Pos(), CodeCondition, e, "condition must compare a loop index")
	}

	// Parity: (i % 2) == 0|1, or with !=.
	if mod, ok := ast.Unparen(cmp.X).(*ast.BinaryExpr); ok && mod.Op == token.REM {
		if cmp.Op != token.EQL && cmp.Op != token.NEQ {
			return nil, "", lw.diag(e.Pos(), CodeCondition, e, "parity tests support only == and !=")
		}
		id, ok := ast.Unparen(mod.X).(*ast.Ident)
		k := -1
		if ok {
			k = nl.levelOf(id)
		}
		two, twoOK := nl.constVal(mod.Y)
		rhs, rhsOK := nl.constVal(cmp.Y)
		if k < 0 || !twoOK || two != 2 || !rhsOK || (rhs != 0 && rhs != 1) {
			return nil, "", lw.diag(e.Pos(), CodeCondition, e, "parity test must be `i%%2 == 0` or `i%%2 == 1` on a loop index")
		}
		lv := nl.levels[k]
		if lv.offset+lv.scale*lv.index.Lo < 0 {
			// Go's % is negative for negative operands; the canonical
			// ODD/EVEN names assume a non-negative range.
			return nil, "", lw.diag(e.Pos(), CodeCondition, e, "parity test over a range with negative values")
		}
		wantOdd := (rhs == 1) == (cmp.Op == token.EQL)
		name := "EVEN(" + lv.name + ")"
		if wantOdd {
			name = "ODD(" + lv.name + ")"
		}
		return func(idx []int64) bool {
			return (lv.offset+lv.scale*idx[k])%2 == 1 == wantOdd
		}, name, nil
	}

	// Comparison: i <op> const.
	id, ok := ast.Unparen(cmp.X).(*ast.Ident)
	k := -1
	if ok {
		k = nl.levelOf(id)
	}
	if k < 0 {
		return nil, "", lw.diag(cmp.X.Pos(), CodeCondition, e, "condition must test a loop index against a constant")
	}
	rhs, ok := nl.constVal(cmp.Y)
	if !ok {
		return nil, "", lw.diag(cmp.Y.Pos(), CodeCondition, cmp.Y, "comparison bound is not an integer constant")
	}
	opText := map[token.Token]string{
		token.LSS: "<", token.LEQ: "<=", token.GTR: ">",
		token.GEQ: ">=", token.EQL: "==", token.NEQ: "!=",
	}[cmp.Op]
	if opText == "" {
		return nil, "", lw.diag(e.Pos(), CodeCondition, e, "comparison operator %s cannot be lowered", cmp.Op)
	}
	lv := nl.levels[k]
	op := cmp.Op
	name := fmt.Sprintf("%s%s%d", lv.name, opText, rhs)
	return func(idx []int64) bool {
		v := lv.offset + lv.scale*idx[k]
		switch op {
		case token.LSS:
			return v < rhs
		case token.LEQ:
			return v <= rhs
		case token.GTR:
			return v > rhs
		case token.GEQ:
			return v >= rhs
		case token.EQL:
			return v == rhs
		default:
			return v != rhs
		}
	}, name, nil
}
