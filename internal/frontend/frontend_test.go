package frontend

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/lang"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
)

const corpusDir = "../../testdata/go"

func testConfig() sim.Config {
	return sim.Config{Processors: 4, BusLatency: 1, MemLatency: 2, Modules: 4,
		SyncOpCost: 1, SchedOverhead: 1}
}

func allSchemes() map[string]func() codegen.Scheme {
	return map[string]func() codegen.Scheme{
		"process":       func() codegen.Scheme { return codegen.ProcessOriented{X: 4, Improved: true} },
		"process-basic": func() codegen.Scheme { return codegen.ProcessOriented{X: 4, Improved: false} },
		"statement":     func() codegen.Scheme { return codegen.StatementOriented{} },
		"ref":           func() codegen.Scheme { return codegen.RefBased{} },
		"instance":      func() codegen.Scheme { return codegen.Scheme(codegen.NewInstanceBased()) },
	}
}

func lowerOne(t *testing.T, path string) *Loop {
	t.Helper()
	res, err := LowerFile(path)
	if err != nil {
		t.Fatalf("LowerFile(%s): %v", path, err)
	}
	for _, d := range res.Rejected {
		t.Errorf("%s: unexpected rejection: %s", path, d)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("%s: lowered %d loops, want 1", path, len(res.Loops))
	}
	return res.Loops[0]
}

// TestTwinIdentity is the golden twin test: a hand-written .do workload and
// its Go-source twin must lower to the same dependence graph, the same
// cache canon key (byte-identical content address), and the same simulated
// execution.
func TestTwinIdentity(t *testing.T) {
	twins := []struct {
		name   string
		doFile string
		goFile string
	}{
		{"branchy", "../lang/testdata/branchy.do", filepath.Join(corpusDir, "branchy.go")},
		{"nested", filepath.Join(corpusDir, "twin_nested.do"), filepath.Join(corpusDir, "twin_nested.go")},
		{"locals", filepath.Join(corpusDir, "twin_locals.do"), filepath.Join(corpusDir, "twin_locals.go")},
	}
	cfg := testConfig()
	for _, tw := range twins {
		t.Run(tw.name, func(t *testing.T) {
			src, err := os.ReadFile(tw.doFile)
			if err != nil {
				t.Fatal(err)
			}
			wDo, err := lang.Parse(string(src))
			if err != nil {
				t.Fatalf("lang.Parse(%s): %v", tw.doFile, err)
			}
			wGo := lowerOne(t, tw.goFile).Workload

			gDo, gGo := wDo.Nest.Analyze().String(), wGo.Nest.Analyze().String()
			if gDo != gGo {
				t.Errorf("dependence graphs differ:\n.do:\n%s\n.go:\n%s", gDo, gGo)
			}
			kDo := cache.RequestKey(wDo, "process(X=4,improved)", cfg)
			kGo := cache.RequestKey(wGo, "process(X=4,improved)", cfg)
			if kDo != kGo {
				t.Errorf("cache canon keys differ: .do %s vs .go %s", kDo, kGo)
			}
			// Identical workloads must simulate identically, cycle for cycle.
			rDo, err := codegen.Run(wDo, codegen.ProcessOriented{X: 4, Improved: true}, cfg)
			if err != nil {
				t.Fatalf(".do run: %v", err)
			}
			rGo, err := codegen.Run(wGo, codegen.ProcessOriented{X: 4, Improved: true}, cfg)
			if err != nil {
				t.Fatalf(".go run: %v", err)
			}
			if rDo.Stats.Cycles != rGo.Stats.Cycles || rDo.SerialCycles != rGo.SerialCycles {
				t.Errorf("twin runs diverge: .do %d cycles (serial %d) vs .go %d cycles (serial %d)",
					rDo.Stats.Cycles, rDo.SerialCycles, rGo.Stats.Cycles, rGo.SerialCycles)
			}
		})
	}
}

// TestAcceptedCorpus lowers every accepted fixture and requires each
// workload to verify race-free under every statically checkable scheme and
// to execute with serial equivalence under the process scheme.
func TestAcceptedCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(files))
	}
	cfg := testConfig()
	for _, f := range files {
		if strings.HasPrefix(filepath.Base(f), "reject_") {
			continue
		}
		t.Run(filepath.Base(f), func(t *testing.T) {
			lp := lowerOne(t, f)
			for name, build := range allSchemes() {
				sp, err := codegen.ExtractSyncProgram(lp.Workload, build())
				if err != nil {
					t.Fatalf("extract %s: %v", name, err)
				}
				if rep := verify.Static(sp, verify.Options{}); !rep.OK() {
					t.Errorf("scheme %s not race-free:\n%s", name, rep)
				}
			}
			if _, err := codegen.Run(lp.Workload, codegen.ProcessOriented{X: 4, Improved: true}, cfg); err != nil {
				t.Errorf("run: %v", err)
			}
		})
	}
}

// TestRejectCorpus checks every reject_*.go fixture against the diagnostic
// pinned in its `// REJECT <code> line=<n>` header.
func TestRejectCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "reject_*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("reject glob: %v (%d files)", err, len(files))
	}
	header := regexp.MustCompile(`^// REJECT (\S+) line=(\d+)`)
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			m := header.FindStringSubmatch(string(src))
			if m == nil {
				t.Fatalf("%s: missing `// REJECT <code> line=<n>` header", f)
			}
			wantCode := m[1]
			wantLine, _ := strconv.Atoi(m[2])
			res := Lower(filepath.Base(f), src)
			if len(res.Loops) != 0 {
				t.Errorf("lowered %d loops, want pure rejection", len(res.Loops))
			}
			if len(res.Rejected) == 0 {
				t.Fatal("no diagnostics produced")
			}
			d := res.Rejected[0]
			if d.Code != wantCode || d.Pos.Line != wantLine {
				t.Errorf("diagnostic = %s, want code %s at line %d", d, wantCode, wantLine)
			}
			if d.Pos.Line > 0 && d.Pos.Col == 0 {
				t.Errorf("diagnostic lacks a column: %s", d)
			}
		})
	}
}

// TestStrideNormalization: a stride-2 loop is renumbered to step 1 with the
// stride folded into the subscripts, preserving both the dependence
// distance and the executed values.
func TestStrideNormalization(t *testing.T) {
	lp := lowerOne(t, filepath.Join(corpusDir, "strided.go"))
	nest := lp.Workload.Nest
	if nest.Depth() != 1 || nest.Indexes[0].Lo != 0 || nest.Indexes[0].Hi != 19 {
		t.Fatalf("normalized index = %+v, want [0,19]", nest.Indexes[0])
	}
	g := nest.Analyze()
	cross := g.CrossArcs()
	if len(cross) != 1 || cross[0].Dist[0] != 1 {
		t.Fatalf("cross arcs = %v, want one distance-1 arc:\n%s", cross, g)
	}
	if n := len(g.UnknownArcs()); n != 0 {
		t.Fatalf("unknown arcs = %d, want 0:\n%s", n, g)
	}
	if _, err := codegen.Run(lp.Workload, codegen.ProcessOriented{X: 4, Improved: true}, testConfig()); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestInlineRejections covers diagnostic codes without corpus fixtures.
func TestInlineRejections(t *testing.T) {
	cases := []struct {
		name, src, code string
	}{
		{"syntax", "package p\nfunc f( {", CodeSyntax},
		{"range-loop", "package p\nfunc f(a []int64) {\n\tfor i := range a {\n\t\ta[i] = 1\n\t}\n}", CodeLoopHeader},
		{"descending", "package p\nfunc f(a []int64) {\n\tfor i := 9; i >= 1; i-- {\n\t\ta[i] = 1\n\t}\n}", CodeLoopHeader},
		{"empty-range", "package p\nfunc f(a []int64) {\n\tfor i := 5; i < 5; i++ {\n\t\ta[i] = 1\n\t}\n}", CodeEmptyRange},
		{"empty-body", "package p\nfunc f() {\n\tfor i := 1; i < 5; i++ {\n\t}\n}", CodeEmptyBody},
		{"index-write", "package p\nfunc f(a []int64) {\n\tfor i := 1; i < 5; i++ {\n\t\ti = 2\n\t}\n}", CodeIndexAssign},
		{"division", "package p\nfunc f(a []int64) {\n\tfor i := 1; i < 5; i++ {\n\t\ta[i] = a[i] / 2\n\t}\n}", CodeExpr},
		{"condition", "package p\nfunc f(a []int64) {\n\tfor i := 1; i < 5; i++ {\n\t\tif a[i] > 0 {\n\t\t\ta[i] = 1\n\t\t}\n\t}\n}", CodeCondition},
		{"three-dims", "package p\nfunc f(a [][][]int64) {\n\tfor i := 1; i < 5; i++ {\n\t\ta[i][i][i] = 1\n\t}\n}", CodeDims},
		{"under-indexed", "package p\nfunc f(a [][]int64) {\n\tfor i := 1; i < 5; i++ {\n\t\ta[i] = a[i-1]\n\t}\n}", CodeNonInteger},
		{"case-collision", "package p\nfunc f(a, A []int64) {\n\tfor i := 1; i < 5; i++ {\n\t\ta[i] = A[i]\n\t}\n}", CodeArrayShape},
		{"call-stmt", "package p\nfunc f() {\n\tfor i := 1; i < 5; i++ {\n\t\tprintln(i)\n\t}\n}", CodeCall},
		{"type-error", "package p\nfunc f(a []int64) {\n\tfor i := 1; i < 5; i++ {\n\t\ta[i] = undefinedName\n\t}\n}", CodeType},
		{"parity-negative", "package p\nfunc f(a []int64) {\n\tfor i := -3; i < 5; i++ {\n\t\tif i%2 == 1 {\n\t\t\ta[i+4] = 1\n\t\t}\n\t}\n}", CodeCondition},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Lower(tc.name+".go", []byte(tc.src))
			if len(res.Rejected) == 0 {
				t.Fatalf("no diagnostics; lowered %d loops", len(res.Loops))
			}
			if res.Rejected[0].Code != tc.code {
				t.Errorf("code = %s, want %s (diag: %s)", res.Rejected[0].Code, tc.code, res.Rejected[0])
			}
		})
	}
}

// TestMultipleLoopsPerFile: rejection is per candidate, and later nests in
// the same function get distinct workload names.
func TestMultipleLoopsPerFile(t *testing.T) {
	src := `package p
func f(a, b []int64, n int) {
	for i := 1; i < 9; i++ {
		a[i] = a[i-1] + 1
	}
	for i := 0; i < n; i++ {
		b[i] = 0
	}
	for i := 1; i < 9; i++ {
		b[i] = a[i]
	}
}`
	res := Lower("multi.go", []byte(src))
	if len(res.Loops) != 2 || len(res.Rejected) != 1 {
		t.Fatalf("got %d loops, %d rejections; want 2 and 1\n%v", len(res.Loops), len(res.Rejected), res.Rejected)
	}
	if res.Rejected[0].Code != CodeSymbolicBound {
		t.Errorf("rejection code = %s, want %s", res.Rejected[0].Code, CodeSymbolicBound)
	}
	if res.Loops[0].Workload.Name != "f" || res.Loops[1].Workload.Name != "f#3" {
		t.Errorf("workload names = %q, %q; want f, f#3",
			res.Loops[0].Workload.Name, res.Loops[1].Workload.Name)
	}
}
