// Benchmarks regenerating every figure-backed experiment (see DESIGN.md's
// per-experiment index): BenchmarkE<k>... times the simulation behind
// experiment Ek and reports its headline simulated metrics, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. Runtime
// (goroutine) primitive costs are benchmarked at the end.
package datasync

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/dataorient"
	"github.com/csrd-repro/datasync/internal/exper"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/stmtorient"
	"github.com/csrd-repro/datasync/internal/workloads"
)

func benchCfg(p int) sim.Config {
	return sim.Config{Processors: p, BusLatency: 1, MemLatency: 2, Modules: p, SyncOpCost: 1, SchedOverhead: 1}
}

// runScheme executes one scheme over the Fig 2.1 loop and reports the
// simulated cycles and speedup as benchmark metrics.
func runScheme(b *testing.B, mk func() codegen.Scheme, n, cost int64, p int) {
	b.Helper()
	var res codegen.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = codegen.Run(workloads.Fig21(n, cost), mk(), benchCfg(p))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Cycles), "simCycles")
	b.ReportMetric(res.Speedup(), "simSpeedup")
}

// BenchmarkE1DependenceAnalysis regenerates Fig 2.1(b): full dependence
// analysis plus covering elimination.
func BenchmarkE1DependenceAnalysis(b *testing.B) {
	w := workloads.Fig21(100, 1)
	var arcs int
	for i := 0; i < b.N; i++ {
		arcs = len(w.Nest.LinearGraph().Enforced())
	}
	b.ReportMetric(float64(arcs), "enforcedArcs")
}

// BenchmarkE2DataOriented regenerates Fig 3.1: the whole-space
// data-oriented synchronization plan with tickets, epochs and copies.
func BenchmarkE2DataOriented(b *testing.B) {
	w := workloads.Fig21(200, 1)
	var f dataorient.Footprint
	for i := 0; i < b.N; i++ {
		f = dataorient.BuildPlan(w.Nest).Footprint()
	}
	b.ReportMetric(float64(f.Keys), "keys")
	b.ReportMetric(float64(f.Copies), "copies")
}

// BenchmarkE3StatementOriented measures Fig 3.2's scheme including the
// delayed-iteration serialization scenario.
func BenchmarkE3StatementOriented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.E3StatementSerialization(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Scheme times each synchronization scheme end to end on the
// canonical loop (the Fig 4.1/4.2 comparison).
func BenchmarkE4Scheme(b *testing.B) {
	cases := []struct {
		name string
		mk   func() codegen.Scheme
	}{
		{"process-improved", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: true} }},
		{"process-basic", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: false} }},
		{"statement", func() codegen.Scheme { return codegen.StatementOriented{} }},
		{"ref-based", func() codegen.Scheme { return codegen.RefBased{} }},
		{"instance-based", func() codegen.Scheme { return codegen.NewInstanceBased() }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { runScheme(b, c.mk, 96, 4, 4) })
	}
}

// BenchmarkE5ImprovedPrimitives measures Fig 4.3's improvement with the
// write-coverage optimization enabled.
func BenchmarkE5ImprovedPrimitives(b *testing.B) {
	for _, improved := range []bool{false, true} {
		name := "basic"
		if improved {
			name = "improved"
		}
		b.Run(name, func(b *testing.B) {
			var res codegen.Result
			var err error
			cfg := benchCfg(4)
			cfg.BusCoverage = true
			for i := 0; i < b.N; i++ {
				res, err = codegen.Run(workloads.Fig21(96, 2),
					codegen.ProcessOriented{X: 2, Improved: improved}, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.BusBroadcasts), "busTx")
			b.ReportMetric(float64(res.Stats.BusSaved), "busSaved")
		})
	}
}

// BenchmarkE6Relaxation times Example 1's three schedules.
func BenchmarkE6Relaxation(b *testing.B) {
	r := workloads.Relax{N: 40, Cost: 10, G: 1}
	serial := (r.N - 1) * (r.N - 1) * r.Cost
	b.Run("wavefront-counter-barrier", func(b *testing.B) {
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			m := sim.New(benchCfg(4))
			bar := barrier.NewSimCounter(m, 0)
			progs := r.Wavefront(m, func(pid int, round int64) []sim.Op { return bar.Ops(round) })
			var err error
			stats, err = m.RunProcesses(progs)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Cycles), "simCycles")
		b.ReportMetric(stats.Speedup(serial), "simSpeedup")
	})
	b.Run("pipeline-PC", func(b *testing.B) {
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			m := sim.New(benchCfg(4))
			var err error
			stats, err = m.RunLoop(r.N-1, r.PipelinedPC(m, 8))
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Cycles), "simCycles")
		b.ReportMetric(stats.Speedup(serial), "simSpeedup")
	})
	b.Run("pipeline-SC-starved", func(b *testing.B) {
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			m := sim.New(benchCfg(4))
			var err error
			stats, err = m.RunLoop(r.N-1, r.PipelinedSC(m, 2))
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Cycles), "simCycles")
		b.ReportMetric(stats.Speedup(serial), "simSpeedup")
	})
}

// BenchmarkE7NestedLoop times the coalesced Example 2 nest.
func BenchmarkE7NestedLoop(b *testing.B) {
	var res codegen.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = codegen.Run(workloads.Nested(12, 10, 4),
			codegen.ProcessOriented{X: 8, Improved: true}, benchCfg(4))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Cycles), "simCycles")
}

// BenchmarkE8Branches times Example 3's branchy loop.
func BenchmarkE8Branches(b *testing.B) {
	var res codegen.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = codegen.Run(workloads.Branchy(60, 4),
			codegen.ProcessOriented{X: 8, Improved: true}, benchCfg(4))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Cycles), "simCycles")
}

// BenchmarkE9Barriers times Example 4's barrier comparison at P=8.
func BenchmarkE9Barriers(b *testing.B) {
	const p, rounds = 8, 6
	variants := []struct {
		name string
		ops  func(m *sim.Machine) func(int, int64) []sim.Op
	}{
		{"counter", func(m *sim.Machine) func(int, int64) []sim.Op {
			bar := barrier.NewSimCounter(m, 0)
			return func(pid int, round int64) []sim.Op { return bar.Ops(round) }
		}},
		{"flags", func(m *sim.Machine) func(int, int64) []sim.Op {
			return barrier.NewSimFlags(m, sim.Memory).Ops
		}},
		{"pc-butterfly", func(m *sim.Machine) func(int, int64) []sim.Op {
			return barrier.NewSimPCBarrier(m).Ops
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var stats sim.Stats
			for i := 0; i < b.N; i++ {
				m := sim.New(benchCfg(p))
				ops := v.ops(m)
				progs := make([][]sim.Op, p)
				for pid := 0; pid < p; pid++ {
					var prog []sim.Op
					for r := int64(1); r <= rounds; r++ {
						prog = append(prog, sim.Compute(int64(5+(pid*3+int(r)*7)%11), nil, "phase"))
						prog = append(prog, ops(pid, r)...)
					}
					progs[pid] = prog
				}
				var err error
				stats, err = m.RunProcesses(progs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "simCycles")
			b.ReportMetric(float64(stats.MaxModuleQueue), "maxModuleQueue")
		})
	}
}

// BenchmarkE10FFT times Example 5's two synchronization regimes.
func BenchmarkE10FFT(b *testing.B) {
	f := workloads.FFT{P: 8, Chunk: 8, Cost: 5}
	b.Run("pairwise", func(b *testing.B) {
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			m := sim.New(benchCfg(f.P))
			var err error
			stats, err = m.RunProcesses(f.Pairwise(m))
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Cycles), "simCycles")
	})
	b.Run("barrier", func(b *testing.B) {
		var stats sim.Stats
		for i := 0; i < b.N; i++ {
			m := sim.New(benchCfg(f.P))
			bar := barrier.NewSimCounter(m, 0)
			var err error
			stats, err = m.RunProcesses(f.WithBarrier(m, func(pid int, round int64) []sim.Op { return bar.Ops(round) }))
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Cycles), "simCycles")
	})
}

// BenchmarkE11Hardware times the section-6 traffic measurements.
func BenchmarkE11Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.E11Hardware(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12AblationX sweeps the number of process counters.
func BenchmarkE12AblationX(b *testing.B) {
	for _, x := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("X=%d", x), func(b *testing.B) {
			runScheme(b, func() codegen.Scheme {
				return codegen.ProcessOriented{X: x, Improved: true}
			}, 200, 6, 8)
		})
	}
}

// ---- Runtime (goroutine) primitive benchmarks ----

// BenchmarkRuntimeMarkTransfer measures the per-iteration cost of the
// improved primitives on real atomics.
func BenchmarkRuntimeMarkTransfer(b *testing.B) {
	s := core.NewPCSet(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := int64(i) + 1
		s.Mark(it, 1)
		s.Transfer(it)
	}
}

// BenchmarkRuntimeWaitSatisfied measures a wait that never spins.
func BenchmarkRuntimeWaitSatisfied(b *testing.B) {
	s := core.NewPCSet(4)
	s.Transfer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Wait(2, 1, 1)
	}
}

// BenchmarkRuntimeSCAdvanceAwait measures the statement-counter runtime.
func BenchmarkRuntimeSCAdvanceAwait(b *testing.B) {
	s := stmtorient.NewSCSet(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := int64(i) + 1
		s.Await(0, seq-1)
		s.Advance(0, seq)
	}
}

// BenchmarkRuntimeDoacross measures a full concurrent Doacross of the
// Fig 2.1 body per loop iteration.
func BenchmarkRuntimeDoacross(b *testing.B) {
	const chunk = 512
	a := make([]int64, chunk+5)
	out := make([]int64, chunk+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Runner{X: 8, Procs: 4}.MustRun(chunk, func(it int64, p *core.Proc) {
			a[it+3] = 10*it + 3
			p.Mark(1)
			p.Wait(2, 1)
			t2 := a[it+1]
			p.Mark(2)
			p.Wait(1, 1)
			t3 := a[it+2]
			p.Mark(3)
			p.Wait(1, 2)
			p.Wait(2, 3)
			a[it] = t2 + t3
			p.Transfer()
			p.Wait(1, 4)
			out[it] = a[it-1]
		})
	}
	b.ReportMetric(float64(chunk), "iters/op")
}

// ---- Hardened-vs-naive runtime comparison ----
//
// naivePCSet replicates the seed runtime for comparison: unpadded packed
// counters in one contiguous atomic array (adjacent slots share cache
// lines) and bare-Gosched spin loops. The benchmark below runs the same
// contended Doacross through it and through the hardened PCSet (padded
// slots, tiered backoff) so the two spin regimes are directly comparable.
type naivePCSet struct {
	x   int64
	pcs []atomic.Int64
}

func newNaivePCSet(x int) *naivePCSet {
	s := &naivePCSet{x: int64(x), pcs: make([]atomic.Int64, x)}
	for k := 0; k < x; k++ {
		s.pcs[k].Store(core.InitialPC(k).Pack())
	}
	return s
}

func (s *naivePCSet) X() int                { return int(s.x) }
func (s *naivePCSet) Load(slot int) core.PC { return core.Unpack(s.pcs[slot].Load()) }

func (s *naivePCSet) Wait(iter, dist, step int64) {
	src := iter - dist
	if src < 1 {
		return
	}
	v := &s.pcs[core.Fold(src, int(s.x))]
	min := core.PC{Owner: src, Step: step}.Pack()
	for v.Load() < min {
		runtime.Gosched()
	}
}

func (s *naivePCSet) Mark(iter, step int64) {
	v := &s.pcs[core.Fold(iter, int(s.x))]
	if v.Load() >= (core.PC{Owner: iter, Step: 0}).Pack() {
		v.Store(core.PC{Owner: iter, Step: step}.Pack())
	}
}

func (s *naivePCSet) Transfer(iter int64) {
	v := &s.pcs[core.Fold(iter, int(s.x))]
	min := core.PC{Owner: iter, Step: 0}.Pack()
	for v.Load() < min {
		runtime.Gosched()
	}
	v.Store(core.PC{Owner: iter + s.x, Step: 0}.Pack())
}

// BenchmarkRuntimeContendedDoacross drives a distance-1 chain (every wait
// contended, waiters on all X slots simultaneously) with P >= 4 workers
// through the hardened runtime (padded + tiered backoff, via Runner over
// the CounterSet interface), the split-field variant, and the seed-style
// naive spin runtime.
// contendedChain runs a distance-1 chain of contendedChainN iterations on 4
// workers over s and verifies the dataflow.
const contendedChainN = 2048

func contendedChain(b *testing.B, s core.CounterSet) {
	const n, procs = contendedChainN, 4
	a := make([]int64, n+1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > n {
					return
				}
				s.Wait(i, 1, 1)
				if i == 1 {
					a[1] = 1
				} else {
					a[i] = a[i-1] + 1
				}
				s.Mark(i, 1)
				s.Transfer(i)
			}
		}()
	}
	wg.Wait()
	if a[n] != n {
		b.Fatalf("a[%d] = %d (dependence violated)", n, a[n])
	}
}

func BenchmarkRuntimeContendedDoacross(b *testing.B) {
	const x = 8
	b.Run("hardened", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			contendedChain(b, core.NewPCSet(x))
		}
		b.ReportMetric(contendedChainN, "iters/op")
	})
	b.Run("hardened-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			contendedChain(b, core.NewSplitPCSet(x))
		}
		b.ReportMetric(contendedChainN, "iters/op")
	})
	b.Run("naive-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			contendedChain(b, newNaivePCSet(x))
		}
		b.ReportMetric(contendedChainN, "iters/op")
	})
}

// BenchmarkRuntimeChunkedDispatch compares Runner dispatch amortization.
func BenchmarkRuntimeChunkedDispatch(b *testing.B) {
	const n = 2048
	for _, chunk := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Runner{X: 8, Procs: 4, Chunk: chunk}.MustRun(n, func(it int64, p *core.Proc) {
					p.Wait(1, 1)
					p.Mark(1)
					p.Transfer()
				})
			}
			b.ReportMetric(n, "iters/op")
		})
	}
}

// BenchmarkRuntimeBarriers measures one barrier episode across goroutines.
func BenchmarkRuntimeBarriers(b *testing.B) {
	const p = 4
	cases := []struct {
		name string
		mk   func() func(pid int) error
	}{
		{"counter", func() func(int) error { return barrier.NewCounter(p).Await }},
		{"flags", func() func(int) error { return barrier.NewFlags(p).Await }},
		{"pc-butterfly", func() func(int) error { return barrier.NewPCButterfly(p).Await }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			// Every participant, partners included, runs exactly b.N
			// rounds, so the episode count is agreed upon up front and
			// shutdown cannot race the last round. No watchdog is armed,
			// so Await cannot fail.
			await := c.mk()
			var wg sync.WaitGroup
			for pid := 1; pid < p; pid++ {
				pid := pid
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if err := await(pid); err != nil {
							panic(err)
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := await(0); err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
		})
	}
}

// BenchmarkE13Scheduling times the dispatch-policy comparison.
func BenchmarkE13Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.E13Scheduling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14DataLatency times the write-visibility sweep.
func BenchmarkE14DataLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.E14DataLatency(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedOuter times the generic Example 1 pipeline scheme on
// the stencil for several groupings.
func BenchmarkPipelinedOuter(b *testing.B) {
	for _, g := range []int64{1, 4} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			var res codegen.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = codegen.Run(workloads.Stencil(24, 6),
					codegen.PipelinedOuter{X: 8, G: g}, benchCfg(4))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Cycles), "simCycles")
		})
	}
}

// BenchmarkRuntimeDissemination measures a non-power-of-two barrier episode.
func BenchmarkRuntimeDissemination(b *testing.B) {
	const p = 6
	bar := barrier.NewDissemination(p)
	var wg sync.WaitGroup
	for pid := 1; pid < p; pid++ {
		pid := pid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := bar.Await(pid); err != nil {
					panic(err) // no watchdog armed: cannot happen
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bar.Await(0); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkJacobiNeighborSync times the PDE neighbor-sync regime (E10.2).
func BenchmarkJacobiNeighborSync(b *testing.B) {
	j := workloads.Jacobi{P: 8, Strip: 8, Sweeps: 8, Cost: 4}
	var stats sim.Stats
	for i := 0; i < b.N; i++ {
		m := sim.New(benchCfg(j.P))
		var err error
		stats, err = m.RunProcesses(j.NeighborSync(m))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Cycles), "simCycles")
}
